// Tests for the per-layer residency-policy axis (DESIGN.md §12): the
// PolicyTable type itself, the per-layer cost accounting behind the greedy
// dominance rule, the policy-aware memory footprint, estimator parity for
// the two legacy-equivalent uniform tables, and the policy-mode search axis
// — including the hybrid-beats-uniform property on a long-sequence workload
// (EXPERIMENTS.md "Residency policy").

#include <gtest/gtest.h>

#include <string>

#include "core/estimator.h"
#include "core/packing.h"
#include "core/search.h"
#include "core/task_graph.h"
#include "model/memory.h"
#include "model/models.h"
#include "model/policy.h"
#include "profile/profiler.h"

namespace harmony {
namespace {

using core::Configuration;
using core::HarmonyMode;
using core::OptimizationFlags;
using core::PolicyMode;
using model::PolicyTable;
using model::StashPolicy;

// ---------------------------------------------------------------------------
// PolicyTable
// ---------------------------------------------------------------------------

TEST(PolicyTable, UniformAndLegacy) {
  const PolicyTable r = PolicyTable::Uniform(5, StashPolicy::kRecompute);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.num_layers(), 5);
  EXPECT_TRUE(r.IsUniform(StashPolicy::kRecompute));
  EXPECT_EQ(r.Count(StashPolicy::kRecompute), 5);
  EXPECT_EQ(r.Count(StashPolicy::kKeep), 0);

  EXPECT_EQ(PolicyTable::Legacy(5, /*use_recompute=*/true), r);
  EXPECT_EQ(PolicyTable::Legacy(5, /*use_recompute=*/false),
            PolicyTable::Uniform(5, StashPolicy::kKeep));

  // The empty table is uniform in nothing: it means "defer to the flags".
  EXPECT_TRUE(PolicyTable().empty());
  EXPECT_FALSE(PolicyTable().IsUniform(StashPolicy::kKeep));
}

TEST(PolicyTable, SetAndAt) {
  PolicyTable t = PolicyTable::Uniform(4, StashPolicy::kKeep);
  t.Set(2, StashPolicy::kSwap);
  EXPECT_EQ(t.at(2), StashPolicy::kSwap);
  EXPECT_EQ(t.at(1), StashPolicy::kKeep);
  EXPECT_FALSE(t.IsUniform(StashPolicy::kKeep));
  EXPECT_EQ(t.Count(StashPolicy::kSwap), 1);
}

TEST(PolicyTable, RleRoundTrip) {
  PolicyTable t = PolicyTable::Uniform(10, StashPolicy::kRecompute);
  t.Set(0, StashPolicy::kKeep);
  t.Set(4, StashPolicy::kSwap);
  t.Set(5, StashPolicy::kSwap);
  const std::string s = t.ToString();
  EXPECT_EQ(s, "k0,r1-3,s4-5,r6-9");
  const auto back = PolicyTable::FromString(s);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), t);

  // Empty round trip.
  EXPECT_EQ(PolicyTable().ToString(), "");
  const auto empty = PolicyTable::FromString("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  // Uniform tables collapse to a single run.
  EXPECT_EQ(PolicyTable::Uniform(96, StashPolicy::kRecompute).ToString(),
            "r0-95");
  EXPECT_EQ(PolicyTable::Uniform(1, StashPolicy::kSwap).ToString(), "s0");
}

TEST(PolicyTable, FromStringRejectsMalformed) {
  EXPECT_FALSE(PolicyTable::FromString("x0-3").ok());       // unknown code
  EXPECT_FALSE(PolicyTable::FromString("k2-4").ok());       // hole before 2
  EXPECT_FALSE(PolicyTable::FromString("k0-3,r6-9").ok());  // gap 4-5
  EXPECT_FALSE(PolicyTable::FromString("k0-3,r2-9").ok());  // overlap
  EXPECT_FALSE(PolicyTable::FromString("k0-3,").ok());      // trailing comma
  EXPECT_FALSE(PolicyTable::FromString("k3-0").ok());       // inverted run
  EXPECT_FALSE(PolicyTable::FromString("keep").ok());       // word, not RLE
}

// ---------------------------------------------------------------------------
// Per-layer cost accounting + greedy dominance
// ---------------------------------------------------------------------------

TEST(ResidencyCost, DominancePicksTheCheaperSide) {
  model::LayerResidencyCost stash_free;
  stash_free.stash_bytes = 0;
  EXPECT_EQ(model::DominantPolicy(stash_free), StashPolicy::kKeep);

  model::LayerResidencyCost cheap_recompute;
  cheap_recompute.stash_bytes = GiB(1);
  cheap_recompute.recompute_time = 1e-3;
  cheap_recompute.swap_stall = 5e-3;
  EXPECT_EQ(model::DominantPolicy(cheap_recompute), StashPolicy::kRecompute);

  model::LayerResidencyCost cheap_swap;
  cheap_swap.stash_bytes = MiB(1);
  cheap_swap.recompute_time = 5e-3;
  cheap_swap.swap_stall = 1e-4;
  EXPECT_EQ(model::DominantPolicy(cheap_swap), StashPolicy::kSwap);
}

TEST(ResidencyCost, ScalesWithMicrobatchAndLink) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const model::SequentialModel m =
      model::Sequentialize(model::TinyTransformer(4));
  const model::CostModel cost(machine.gpu);
  // Pick a layer that actually stashes.
  int layer = -1;
  for (int l = 0; l < m.num_layers(); ++l) {
    if (m.layers[l].spec.stash_bytes_per_sample > 0) {
      layer = l;
      break;
    }
  }
  ASSERT_GE(layer, 0);
  const auto c2 = model::ResidencyCost(cost, m.layers[layer].spec, 2,
                                       machine.pcie_bw);
  const auto c4 = model::ResidencyCost(cost, m.layers[layer].spec, 4,
                                       machine.pcie_bw);
  EXPECT_EQ(c4.stash_bytes, 2 * c2.stash_bytes);
  EXPECT_GT(c4.recompute_time, c2.recompute_time);
  EXPECT_DOUBLE_EQ(c4.swap_stall, 2 * c2.swap_stall);
  // A slower link doubles the stall but leaves recompute untouched.
  const auto slow = model::ResidencyCost(cost, m.layers[layer].spec, 2,
                                         machine.pcie_bw / 2);
  EXPECT_DOUBLE_EQ(slow.swap_stall, 2 * c2.swap_stall);
  EXPECT_DOUBLE_EQ(slow.recompute_time, c2.recompute_time);
}

// ---------------------------------------------------------------------------
// Policy-aware memory footprint
// ---------------------------------------------------------------------------

TEST(Footprint, PolicyOverloadMatchesLegacyBools) {
  const model::SequentialModel m =
      model::Sequentialize(model::TinyTransformer(8));
  const int R = m.num_layers();
  for (const int mb : {1, 8}) {
    const auto legacy_r =
        model::ComputeFootprint(m, mb, model::Optimizer::kAdam, true);
    const auto table_r = model::ComputeFootprint(
        m, mb, model::Optimizer::kAdam, PolicyTable::Legacy(R, true));
    EXPECT_EQ(legacy_r.activations, table_r.activations);
    EXPECT_EQ(legacy_r.total(), table_r.total());

    const auto legacy_k =
        model::ComputeFootprint(m, mb, model::Optimizer::kAdam, false);
    const auto table_k = model::ComputeFootprint(
        m, mb, model::Optimizer::kAdam, PolicyTable::Legacy(R, false));
    EXPECT_EQ(legacy_k.activations, table_k.activations);

    // A mixed table sits strictly between the two uniform bounds whenever
    // keep and recompute actually differ.
    PolicyTable mixed = PolicyTable::Uniform(R, StashPolicy::kRecompute);
    for (int l = 0; l < R / 2; ++l) mixed.Set(l, StashPolicy::kKeep);
    const auto mid =
        model::ComputeFootprint(m, mb, model::Optimizer::kAdam, mixed);
    EXPECT_GE(mid.activations, table_r.activations);
    EXPECT_LE(mid.activations, table_k.activations);
    if (legacy_k.activations > legacy_r.activations) {
      EXPECT_GT(mid.activations, table_r.activations);
      EXPECT_LT(mid.activations, table_k.activations);
    }
  }
}

// ---------------------------------------------------------------------------
// Estimator parity + policy pricing
// ---------------------------------------------------------------------------

struct EstimateSetup {
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  model::SequentialModel model;
  profile::ProfileDb db;
  Configuration config;

  explicit EstimateSetup(int blocks = 16, int u = 2)
      : model(model::Sequentialize(model::TinyTransformer(blocks, 512, 128))),
        db(profile::Profiler(machine.gpu, {}).Profile(model)) {
    core::PackingOptions opts;
    opts.capacity = MiB(512);
    config.u_fwd = config.u_bwd = u;
    config.bwd_packs = core::BackwardPacks(u, db, opts).value();
    opts.min_packs = 4;
    config.fwd_packs =
        core::ForwardPacks(u, config.bwd_packs, db, opts).value();
  }

  core::Estimate Estimate(const OptimizationFlags& flags,
                          const PolicyTable& policy) const {
    Configuration c = config;
    c.policy = policy;
    const core::TaskGraph g = core::GenerateHarmonyTaskGraph(
        c, HarmonyMode::kPipelineParallel, 4, 8, flags, db);
    return core::RuntimeEstimator(db, machine).EstimateIteration(g);
  }
};

TEST(EstimatorPolicy, UniformTablesMatchLegacyBitForBit) {
  const EstimateSetup s;
  const int R = s.db.num_layers();

  const core::Estimate legacy_r = s.Estimate(OptimizationFlags{}, {});
  const core::Estimate table_r =
      s.Estimate(OptimizationFlags{}, PolicyTable::Legacy(R, true));
  EXPECT_EQ(legacy_r.iteration_time, table_r.iteration_time);
  EXPECT_EQ(legacy_r.swap_bytes, table_r.swap_bytes);
  EXPECT_EQ(legacy_r.p2p_bytes, table_r.p2p_bytes);

  OptimizationFlags keep_flags;
  keep_flags.use_recompute = false;
  const core::Estimate legacy_k = s.Estimate(keep_flags, {});
  const core::Estimate table_k =
      s.Estimate(keep_flags, PolicyTable::Legacy(R, false));
  EXPECT_EQ(legacy_k.iteration_time, table_k.iteration_time);
  EXPECT_EQ(legacy_k.swap_bytes, table_k.swap_bytes);
}

TEST(EstimatorPolicy, SwapChargesTrafficKeepDoesNot) {
  const EstimateSetup s;
  const int R = s.db.num_layers();
  const core::Estimate keep =
      s.Estimate(OptimizationFlags{}, PolicyTable::Uniform(R, StashPolicy::kKeep));
  const core::Estimate swap =
      s.Estimate(OptimizationFlags{}, PolicyTable::Uniform(R, StashPolicy::kSwap));
  // Swapping the stash moves strictly more bytes over the host link than
  // keeping it resident, and the backward's blocking fetch can only slow the
  // iteration down.
  EXPECT_GT(swap.swap_bytes, keep.swap_bytes);
  EXPECT_GE(swap.iteration_time, keep.iteration_time);
}

TEST(EstimatorPolicy, RecomputeTradesTrafficForCompute) {
  const EstimateSetup s;
  const int R = s.db.num_layers();
  const core::Estimate remat = s.Estimate(
      OptimizationFlags{}, PolicyTable::Uniform(R, StashPolicy::kRecompute));
  const core::Estimate swap = s.Estimate(
      OptimizationFlags{}, PolicyTable::Uniform(R, StashPolicy::kSwap));
  EXPECT_LT(remat.swap_bytes, swap.swap_bytes);
}

// ---------------------------------------------------------------------------
// Search: the policy axis
// ---------------------------------------------------------------------------

TEST(PolicyMode, NamesRoundTrip) {
  for (const PolicyMode mode :
       {PolicyMode::kLegacy, PolicyMode::kRecomputeAll, PolicyMode::kKeepAll,
        PolicyMode::kSwapAll, PolicyMode::kHybridGreedy, PolicyMode::kSweep}) {
    const auto back = core::PolicyModeFromName(core::PolicyModeName(mode));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back.value(), mode);
  }
  EXPECT_FALSE(core::PolicyModeFromName("checkpoint").ok());
  EXPECT_FALSE(core::PolicyModeFromName("").ok());
}

struct SearchSetup {
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  model::SequentialModel model;
  profile::ProfileDb db;

  explicit SearchSetup(const model::LayerGraph& g)
      : model(model::Sequentialize(g)),
        db(profile::Profiler(machine.gpu, {}).Profile(model)) {}

  core::SearchResult Search(PolicyMode mode, int minibatch = 8) const {
    core::SearchOptions so;
    so.policy_mode = mode;
    so.u_fwd_max = 8;
    so.u_bwd_max = 8;
    const auto r = core::SearchConfiguration(
        db, machine, HarmonyMode::kPipelineParallel, minibatch, {}, so);
    HARMONY_CHECK(r.ok()) << r.status();
    return r.value();
  }
};

TEST(SearchPolicy, LegacyAndRecomputeAllAgreeOnTheWinner) {
  const SearchSetup s(model::TinyTransformer(16, 512, 128));
  const core::SearchResult legacy = s.Search(PolicyMode::kLegacy);
  const core::SearchResult remat = s.Search(PolicyMode::kRecomputeAll);
  // Same plan and same estimate: all-recompute is what legacy lowers to.
  EXPECT_EQ(legacy.best.u_fwd, remat.best.u_fwd);
  EXPECT_EQ(legacy.best.u_bwd, remat.best.u_bwd);
  EXPECT_EQ(legacy.best_estimate.iteration_time,
            remat.best_estimate.iteration_time);
  EXPECT_EQ(legacy.configs_explored, remat.configs_explored);
  // But the explicit mode records its table on the winner.
  EXPECT_TRUE(legacy.best.policy.empty());
  EXPECT_TRUE(remat.best.policy.IsUniform(StashPolicy::kRecompute));
}

TEST(SearchPolicy, SweepTriplesTheExploredSpace) {
  const SearchSetup s(model::TinyTransformer(16, 512, 128));
  const core::SearchResult legacy = s.Search(PolicyMode::kLegacy);
  const core::SearchResult sweep = s.Search(PolicyMode::kSweep);
  EXPECT_EQ(sweep.configs_explored, 3 * legacy.configs_explored);
  // The sweep can only improve on any single uniform mode it contains.
  EXPECT_LE(sweep.best_estimate.iteration_time,
            legacy.best_estimate.iteration_time);
}

TEST(SearchPolicy, HybridBeatsBothUniformPoliciesOnLongSequences) {
  // The EXPERIMENTS.md "Residency policy" workload: a long-sequence GPT2
  // variant. Attention stash grows with seq^2 while the re-forward grows
  // about linearly per token, so neither uniform table is optimal: cheap
  // fat-stash layers want recompute, expensive lean-stash layers want swap.
  model::TransformerConfig cfg;
  cfg.name = "GPT2-seq4k";
  cfg.num_blocks = 24;
  cfg.hidden = 1024;
  cfg.seq_len = 4096;
  cfg.heads = 16;
  cfg.vocab = 50257;
  const SearchSetup s(model::BuildTransformer(cfg));

  const core::SearchResult swap_only = s.Search(PolicyMode::kSwapAll);
  const core::SearchResult remat_only = s.Search(PolicyMode::kRecomputeAll);
  const core::SearchResult sweep = s.Search(PolicyMode::kSweep);

  // Acceptance (ISSUE 7): the policy-axis search finds a hybrid plan that
  // strictly beats both uniform extremes on this workload.
  EXPECT_LT(sweep.best_estimate.iteration_time,
            swap_only.best_estimate.iteration_time);
  EXPECT_LT(sweep.best_estimate.iteration_time,
            remat_only.best_estimate.iteration_time);
  // And the winner really is mixed, not one of the uniforms in disguise.
  EXPECT_FALSE(sweep.best.policy.empty());
  EXPECT_FALSE(sweep.best.policy.IsUniform(StashPolicy::kRecompute));
  EXPECT_FALSE(sweep.best.policy.IsUniform(StashPolicy::kSwap));
  EXPECT_FALSE(sweep.best.policy.IsUniform(StashPolicy::kKeep));
}

TEST(SearchPolicy, ThreadCountDoesNotChangeTheSweepWinner) {
  const SearchSetup s(model::TinyTransformer(16, 512, 128));
  core::SearchOptions serial;
  serial.policy_mode = PolicyMode::kSweep;
  serial.u_fwd_max = 8;
  serial.u_bwd_max = 8;
  core::SearchOptions threaded = serial;
  threaded.num_threads = 4;
  const auto a = core::SearchConfiguration(
      s.db, s.machine, HarmonyMode::kPipelineParallel, 8, {}, serial);
  const auto b = core::SearchConfiguration(
      s.db, s.machine, HarmonyMode::kPipelineParallel, 8, {}, threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().best.ToString(), b.value().best.ToString());
  EXPECT_EQ(a.value().best_estimate.iteration_time,
            b.value().best_estimate.iteration_time);
  EXPECT_EQ(a.value().configs_feasible, b.value().configs_feasible);
}

}  // namespace
}  // namespace harmony
