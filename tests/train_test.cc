#include <gtest/gtest.h>

#include "tensor/train.h"

namespace harmony::tensor {
namespace {

using core::Pack;

TrainOptions DefaultOptions() {
  TrainOptions o;
  o.iterations = 8;
  o.minibatch = 16;
  o.microbatch = 4;
  o.fwd_microbatch = 8;
  o.packs = {Pack{0, 2}, Pack{3, 5}, Pack{6, 7}};
  return o;
}

TEST(Train, LossesDecrease) {
  TrainOptions o = DefaultOptions();
  o.iterations = 30;
  const auto r = Train(TinyModelConfig{}, ExecutionScheme::kBaseline1Gpu, o);
  double early = 0, late = 0;
  for (int i = 0; i < 5; ++i) early += r.losses[i];
  for (int i = 25; i < 30; ++i) late += r.losses[i];
  EXPECT_LT(late, early);
  EXPECT_GT(r.eval_accuracy, 0.75);  // learnable synthetic task
}

TEST(Train, HarmonyMatchesBaselineBitExactly) {
  // The Fig 12 / Table 3 claim: Harmony's reordered execution (grouping,
  // packing, recomputation, jit updates) leaves every minibatch loss
  // bit-identical to the baseline.
  const TrainOptions o = DefaultOptions();
  const auto base = Train(TinyModelConfig{}, ExecutionScheme::kBaseline1Gpu, o);
  const auto harmony = Train(TinyModelConfig{}, ExecutionScheme::kHarmony1Gpu, o);
  const auto pp = Train(TinyModelConfig{}, ExecutionScheme::kHarmonyPp, o);
  ASSERT_EQ(base.losses.size(), harmony.losses.size());
  for (size_t i = 0; i < base.losses.size(); ++i) {
    EXPECT_EQ(base.losses[i], harmony.losses[i]) << "iteration " << i;
    EXPECT_EQ(base.losses[i], pp.losses[i]) << "iteration " << i;
  }
  EXPECT_DOUBLE_EQ(base.eval_accuracy, harmony.eval_accuracy);
  EXPECT_DOUBLE_EQ(base.eval_accuracy, pp.eval_accuracy);
}

TEST(Train, DataParallelVariantsMatchEachOther) {
  // Table 3's DP column: Harmony DP matches baseline DP exactly (though both
  // may differ from the single-GPU runs in the last float digits, because
  // the reduction changes summation nesting).
  const TrainOptions o = DefaultOptions();
  const auto bdp = Train(TinyModelConfig{}, ExecutionScheme::kBaselineDp, o);
  const auto hdp = Train(TinyModelConfig{}, ExecutionScheme::kHarmonyDp, o);
  for (size_t i = 0; i < bdp.losses.size(); ++i) {
    EXPECT_EQ(bdp.losses[i], hdp.losses[i]) << "iteration " << i;
  }
  EXPECT_DOUBLE_EQ(bdp.eval_accuracy, hdp.eval_accuracy);
}

TEST(Train, SgdOptimizerAlsoMatches) {
  TrainOptions o = DefaultOptions();
  o.use_adam = false;
  o.lr = 0.05f;
  const auto base = Train(TinyModelConfig{}, ExecutionScheme::kBaseline1Gpu, o);
  const auto harmony = Train(TinyModelConfig{}, ExecutionScheme::kHarmony1Gpu, o);
  for (size_t i = 0; i < base.losses.size(); ++i) {
    EXPECT_EQ(base.losses[i], harmony.losses[i]);
  }
}

TEST(Train, CausalGptLikeModelMatches) {
  // The Fig 19 analogue: a GPT-style (causal) variant fine-tuned the same
  // way also matches exactly.
  TinyModelConfig mc;
  mc.causal = true;
  mc.classes = mc.vocab;  // LM-style wide head
  const TrainOptions o = DefaultOptions();
  const auto base = Train(mc, ExecutionScheme::kBaseline1Gpu, o);
  const auto harmony = Train(mc, ExecutionScheme::kHarmonyPp, o);
  for (size_t i = 0; i < base.losses.size(); ++i) {
    EXPECT_EQ(base.losses[i], harmony.losses[i]);
  }
}

// Property sweep: bit-exactness must hold for every packing / microbatch
// combination, including U_F != U_B and ragged splits.
struct MatchParam {
  int u_fwd, u_bwd, minibatch;
  core::PackList packs;
};

class BitExactSweep : public ::testing::TestWithParam<MatchParam> {};

TEST_P(BitExactSweep, HarmonyEqualsBaseline) {
  const MatchParam p = GetParam();
  TrainOptions o;
  o.iterations = 4;
  o.minibatch = p.minibatch;
  o.microbatch = p.u_bwd;
  o.fwd_microbatch = p.u_fwd;
  o.packs = p.packs;
  const auto base = Train(TinyModelConfig{}, ExecutionScheme::kBaseline1Gpu, o);
  const auto harmony = Train(TinyModelConfig{}, ExecutionScheme::kHarmony1Gpu, o);
  for (size_t i = 0; i < base.losses.size(); ++i) {
    EXPECT_EQ(base.losses[i], harmony.losses[i]) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BitExactSweep,
    ::testing::Values(
        // One pack (everything fused), U_F == U_B.
        MatchParam{4, 4, 16, {Pack{0, 7}}},
        // Per-layer packs.
        MatchParam{4, 4, 16,
                   {Pack{0, 0}, Pack{1, 1}, Pack{2, 2}, Pack{3, 3}, Pack{4, 4},
                    Pack{5, 5}, Pack{6, 6}, Pack{7, 7}}},
        // U_F != U_B with aligned pieces.
        MatchParam{8, 2, 16, {Pack{0, 3}, Pack{4, 7}}},
        // U_F < U_B.
        MatchParam{2, 8, 16, {Pack{0, 3}, Pack{4, 7}}},
        // Ragged microbatches (minibatch not divisible).
        MatchParam{3, 3, 13, {Pack{0, 4}, Pack{5, 7}}},
        // Uneven pack sizes.
        MatchParam{4, 2, 12, {Pack{0, 0}, Pack{1, 5}, Pack{6, 7}}}));

}  // namespace
}  // namespace harmony::tensor
