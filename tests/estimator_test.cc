#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/packing.h"
#include "core/scheduler.h"
#include "model/models.h"
#include "profile/profiler.h"

namespace harmony::core {
namespace {

struct Fixture {
  Fixture()
      : machine(hw::MachineSpec::Commodity4Gpu()),
        model(model::Sequentialize(model::TinyTransformer(16, 512, 128))),
        db(profile::Profiler(machine.gpu, {}).Profile(model)) {}

  Configuration Config(int u_fwd, int u_bwd) const {
    PackingOptions opts;
    opts.capacity = MiB(512);
    Configuration c;
    c.u_fwd = u_fwd;
    c.u_bwd = u_bwd;
    c.bwd_packs = BackwardPacks(u_bwd, db, opts).value();
    opts.min_packs = 4;
    c.fwd_packs = ForwardPacks(u_fwd, c.bwd_packs, db, opts).value();
    return c;
  }

  hw::MachineSpec machine;
  model::SequentialModel model;
  profile::ProfileDb db;
};

TEST(Estimator, LowerBoundedByComputeAndPositive) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, f.db);
  const RuntimeEstimator est(f.db, f.machine);
  const Estimate e = est.EstimateIteration(g);
  // Per-GPU compute: total fwd+recompute+bwd work / N is a hard lower bound.
  double total = 0;
  for (int l = 0; l < f.db.num_layers(); ++l) {
    total += 8 / 2 * (2 * f.db.FwdTime(l, 2) + f.db.BwdTime(l, 2));
  }
  EXPECT_GT(e.iteration_time, total / 4 * 0.9);
  EXPECT_GT(e.swap_bytes, 0);
}

TEST(Estimator, SwapBytesTrackWeightTraffic) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, f.db);
  const RuntimeEstimator est(f.db, f.machine);
  const Estimate e = est.EstimateIteration(g);
  const Bytes params = f.db.PackParamBytes(0, f.db.num_layers() - 1);
  // Harmony PP: roughly 3|W| (fwd in, bwd in, grads out) plus checkpoints.
  EXPECT_GE(e.swap_bytes, 2 * params);
  EXPECT_LE(e.swap_bytes, 6 * params);
}

TEST(Estimator, DataParallelSwapsScaleWithReplicas) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph pp = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, f.db);
  const TaskGraph dp = GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 8, OptimizationFlags{}, f.db);
  const RuntimeEstimator est(f.db, f.machine);
  EXPECT_GT(est.EstimateIteration(dp).swap_bytes,
            2 * est.EstimateIteration(pp).swap_bytes);
}

TEST(Estimator, P2pOffIsSlower) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  OptimizationFlags on, off;
  off.p2p_transfers = false;
  const RuntimeEstimator est(f.db, f.machine);
  const auto g_on = GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel,
                                             4, 8, on, f.db);
  const auto g_off = GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel,
                                              4, 8, off, f.db);
  const Estimate e_on = est.EstimateIteration(g_on);
  const Estimate e_off = est.EstimateIteration(g_off);
  EXPECT_GT(e_on.p2p_bytes, 0);
  EXPECT_EQ(e_off.p2p_bytes, 0);
  EXPECT_GE(e_off.iteration_time, e_on.iteration_time);
  EXPECT_GT(e_off.swap_bytes, e_on.swap_bytes);
}

TEST(Estimator, PrefetchHidesWeightFetches) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  OptimizationFlags on, off;
  off.prefetch = false;
  const RuntimeEstimator est(f.db, f.machine);
  const auto g_on = GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel,
                                             4, 8, on, f.db);
  const auto g_off = GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel,
                                              4, 8, off, f.db);
  EXPECT_LE(est.EstimateIteration(g_on).iteration_time,
            est.EstimateIteration(g_off).iteration_time);
}

TEST(Estimator, GroupingOnIsFasterOrEqual) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  OptimizationFlags on, off;
  off.input_batch_grouping = false;
  const RuntimeEstimator est(f.db, f.machine);
  const auto g_on =
      GenerateHarmonyTaskGraph(c, HarmonyMode::kDataParallel, 4, 16, on, f.db);
  const auto g_off =
      GenerateHarmonyTaskGraph(c, HarmonyMode::kDataParallel, 4, 16, off, f.db);
  EXPECT_LE(est.EstimateIteration(g_on).swap_bytes,
            est.EstimateIteration(g_off).swap_bytes);
}

TEST(Estimator, MoreMicrobatchesMoreTime) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const RuntimeEstimator est(f.db, f.machine);
  const auto g8 = GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel, 4,
                                           8, OptimizationFlags{}, f.db);
  const auto g16 = GenerateHarmonyTaskGraph(c, HarmonyMode::kPipelineParallel, 4,
                                            16, OptimizationFlags{}, f.db);
  EXPECT_GT(est.EstimateIteration(g16).iteration_time,
            est.EstimateIteration(g8).iteration_time);
}

// Golden regression for the ready-queue estimator rewrite: exact
// EstimateIteration outputs for a handful of task graphs, captured from the
// original O(passes x lanes) fixpoint-sweep implementation. The rewrite must
// keep these bit-for-bit (iteration times are a pure function of dependency
// end times, so scheduling order cannot move them; byte counters are sums).
TEST(Estimator, GoldenSchedulesPinnedAcrossRewrite) {
  const Fixture f;
  const Configuration c22 = f.Config(2, 2);

  struct Golden {
    const char* name;
    HarmonyMode mode;
    int minibatch;
    OptimizationFlags flags;
    double time;
    Bytes swap;
    Bytes p2p;
  };
  OptimizationFlags all_on;
  OptimizationFlags no_p2p;
  no_p2p.p2p_transfers = false;
  OptimizationFlags no_prefetch;
  no_prefetch.prefetch = false;
  OptimizationFlags no_jit_update;
  no_jit_update.jit_update = false;
  OptimizationFlags no_grouping;
  no_grouping.input_batch_grouping = false;

  const Golden goldens[] = {
      {"pp", HarmonyMode::kPipelineParallel, 8, all_on,
       0.12359152136902132, 511320064, 10485760},
      {"dp", HarmonyMode::kDataParallel, 8, all_on,
       0.13466751933169979, 2045280256, 0},
      {"pp_no_p2p", HarmonyMode::kPipelineParallel, 8, no_p2p,
       0.12379975896093309, 532291584, 0},
      {"pp_no_prefetch", HarmonyMode::kPipelineParallel, 8, no_prefetch,
       0.12446235119103652, 511320064, 10485760},
      {"pp_rigid_update", HarmonyMode::kPipelineParallel, 8, no_jit_update,
       0.12359152136902132, 511320064, 10485760},
      {"dp_ungrouped", HarmonyMode::kDataParallel, 16, no_grouping,
       0.22929044485236438, 4090560512, 0},
  };
  const RuntimeEstimator est(f.db, f.machine);
  for (const Golden& g : goldens) {
    const TaskGraph graph =
        GenerateHarmonyTaskGraph(c22, g.mode, 4, g.minibatch, g.flags, f.db);
    const Estimate e = est.EstimateIteration(graph);
    EXPECT_DOUBLE_EQ(e.iteration_time, g.time) << g.name;
    EXPECT_EQ(e.swap_bytes, g.swap) << g.name;
    EXPECT_EQ(e.p2p_bytes, g.p2p) << g.name;
  }

  // A second configuration shape: U_F != U_B with a coarser forward floor.
  const Configuration c41 = [&]() {
    PackingOptions opts;
    opts.capacity = MiB(512);
    Configuration c;
    c.u_fwd = 4;
    c.u_bwd = 1;
    c.bwd_packs = BackwardPacks(1, f.db, opts).value();
    opts.min_packs = 2;
    c.fwd_packs = ForwardPacks(4, c.bwd_packs, f.db, opts).value();
    return c;
  }();
  const TaskGraph graph = GenerateHarmonyTaskGraph(
      c41, HarmonyMode::kPipelineParallel, 4, 12, all_on, f.db);
  const Estimate e = est.EstimateIteration(graph);
  EXPECT_DOUBLE_EQ(e.iteration_time, 0.14325066413564352);
  EXPECT_EQ(e.swap_bytes, 511320064);
  EXPECT_EQ(e.p2p_bytes, 9437184);
}

TEST(Search, FindsFeasibleBestAndExploresSpace) {
  const Fixture f;
  hw::MachineSpec small = f.machine;
  small.gpu.memory_capacity = MiB(512);
  SearchOptions opts;
  opts.u_fwd_max = 4;
  opts.u_bwd_max = 4;
  opts.keep_explored = true;
  const auto result =
      SearchConfiguration(f.db, small, HarmonyMode::kPipelineParallel, 8,
                          OptimizationFlags{}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().configs_feasible, 4);
  EXPECT_GT(result.value().best_estimate.iteration_time, 0);
  // The best config is at least as good as every explored one.
  for (const auto& ec : result.value().explored) {
    EXPECT_GE(ec.estimate.iteration_time + 1e-12,
              result.value().best_estimate.iteration_time);
  }
}

TEST(Search, EquiFbNeverBeatsDistinctFb) {
  // Table 4: the Distinct-FB design space contains Equi-FB, so its best is
  // at least as fast.
  const Fixture f;
  hw::MachineSpec small = f.machine;
  small.gpu.memory_capacity = MiB(512);
  SearchOptions distinct, equi;
  distinct.u_fwd_max = equi.u_fwd_max = 4;
  distinct.u_bwd_max = equi.u_bwd_max = 4;
  equi.equi_fb = true;
  const auto d = SearchConfiguration(f.db, small, HarmonyMode::kPipelineParallel,
                                     8, OptimizationFlags{}, distinct);
  const auto e = SearchConfiguration(f.db, small, HarmonyMode::kPipelineParallel,
                                     8, OptimizationFlags{}, equi);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_LE(d.value().best_estimate.iteration_time,
            e.value().best_estimate.iteration_time + 1e-12);
  // Equi-FB uses the same microbatch size for both passes.
  EXPECT_EQ(e.value().best.u_fwd, e.value().best.u_bwd);
}

TEST(Search, InfeasibleModelReturnsError) {
  const Fixture f;
  hw::MachineSpec tiny = f.machine;
  tiny.gpu.memory_capacity = MiB(32);
  const auto result = SearchConfiguration(
      f.db, tiny, HarmonyMode::kPipelineParallel, 8, OptimizationFlags{}, {});
  EXPECT_FALSE(result.ok());
}

TEST(Scheduler, EndToEndProducesValidGraph) {
  const Fixture f;
  hw::MachineSpec small = f.machine;
  small.gpu.memory_capacity = MiB(512);
  const Scheduler scheduler(small);
  SearchOptions opts;
  opts.u_fwd_max = 2;
  opts.u_bwd_max = 2;
  const auto outcome = scheduler.Schedule(
      f.model, HarmonyMode::kPipelineParallel, 8, OptimizationFlags{}, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ValidateTaskGraph(outcome.value().graph);
  EXPECT_EQ(outcome.value().graph.minibatch, 8);
}

}  // namespace
}  // namespace harmony::core
