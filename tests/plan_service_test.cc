// PlanService behaviour tests: cache hits return identical plans, identical
// concurrent requests collapse to one search (single-flight), an over-budget
// admission queue load-sheds explicitly, deadlines trip cooperative
// cancellation, and shutdown drains without dropping a future. The last
// section drives the whole stack end-to-end over a Unix-domain socket.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/plan_service.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace harmony {
namespace {

using serve::ModelSpec;
using serve::PlanRequest;
using serve::PlanResponse;
using serve::PlanService;
using serve::ServeOptions;

/// A request small enough that its cold search takes milliseconds: the tests
/// below exercise the service machinery, not Algorithm 1.
PlanRequest TinyRequest(int minibatch = 4) {
  PlanRequest request;
  request.model.kind = ModelSpec::Kind::kTransformer;
  request.model.name = "tiny";
  request.model.transformer.name = "tiny";
  request.model.transformer.num_blocks = 4;
  request.model.transformer.hidden = 256;
  request.model.transformer.seq_len = 64;
  request.model.transformer.heads = 4;
  request.model.transformer.vocab = 512;
  request.minibatch = minibatch;
  request.options.u_fwd_max = 4;
  request.options.u_bwd_max = 4;
  return request;
}

std::string ConfigBytes(const PlanResponse& response) {
  return serve::ConfigurationToJson(response.config).Dump();
}

TEST(PlanService, CacheHitReturnsIdenticalPlan) {
  PlanService service(ServeOptions{});
  const PlanResponse cold = service.Plan(TinyRequest());
  ASSERT_TRUE(cold.status.ok()) << cold.status;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.configs_explored, 0);

  const PlanResponse warm = service.Plan(TinyRequest());
  ASSERT_TRUE(warm.status.ok()) << warm.status;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(ConfigBytes(warm), ConfigBytes(cold));

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.searches, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(PlanService, BypassCacheForcesAFreshSearch) {
  PlanService service(ServeOptions{});
  ASSERT_TRUE(service.Plan(TinyRequest()).status.ok());
  PlanRequest bypass = TinyRequest();
  bypass.bypass_cache = true;
  const PlanResponse r = service.Plan(bypass);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(service.stats().searches, 2u);
}

TEST(PlanService, StampedeCollapsesToOneSearch) {
  ServeOptions options;
  options.num_workers = 4;
  options.stall_for_test = 0.05;  // hold the search so submits overlap it
  PlanService service(options);

  constexpr int kCallers = 8;
  std::vector<std::shared_future<PlanResponse>> futures;
  futures.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    futures.push_back(service.Submit(TinyRequest()));
  }
  std::string first;
  for (auto& f : futures) {
    const PlanResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    if (first.empty()) first = ConfigBytes(r);
    EXPECT_EQ(ConfigBytes(r), first);
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.searches, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kCallers - 1));
}

TEST(PlanService, OverBudgetQueueRejectsExplicitly) {
  ServeOptions options;
  options.num_workers = 1;
  options.max_pending = 1;
  options.retry_after_ms = 75;
  options.stall_for_test = 0.2;
  PlanService service(options);

  // First request occupies the whole admission budget...
  auto admitted = service.Submit(TinyRequest(4));
  // ...so a *different* request (distinct fingerprint — identical ones would
  // coalesce) must be rejected immediately, not queued or hung.
  const PlanResponse rejected = service.Plan(TinyRequest(8));
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.retry_after_ms, 75);
  EXPECT_LT(rejected.latency_seconds, 0.1);  // rejected without waiting

  const PlanResponse first = admitted.get();
  EXPECT_TRUE(first.status.ok()) << first.status;
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 1u);
}

TEST(PlanService, DeadlineExpiredBeforeSearchStarts) {
  ServeOptions options;
  options.num_workers = 1;
  options.stall_for_test = 0.15;  // longer than the deadline below
  PlanService service(options);

  PlanRequest request = TinyRequest();
  request.deadline_ms = 20;
  const PlanResponse r = service.Plan(request);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.searches, 0u);  // never started a doomed search
}

TEST(PlanService, DoesNotCoalesceOntoShorterDeadlineInflight) {
  ServeOptions options;
  options.num_workers = 2;
  options.stall_for_test = 0.15;  // holds the first search past its deadline
  PlanService service(options);

  PlanRequest doomed = TinyRequest();
  doomed.deadline_ms = 20;
  auto first = service.Submit(doomed);
  // Identical content but no deadline: attaching to the doomed in-flight
  // would hand this caller the other request's DeadlineExceeded. It must be
  // admitted as its own search instead.
  auto second = service.Submit(TinyRequest());

  EXPECT_EQ(first.get().status.code(), StatusCode::kDeadlineExceeded);
  const PlanResponse ok = second.get();
  EXPECT_TRUE(ok.status.ok()) << ok.status;
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.admitted, 2u);
}

TEST(PlanService, ShutdownDrainsEveryAdmittedRequest) {
  ServeOptions options;
  options.num_workers = 2;
  options.stall_for_test = 0.05;
  PlanService service(options);

  std::vector<std::shared_future<PlanResponse>> futures;
  for (int mb = 1; mb <= 4; ++mb) {
    futures.push_back(service.Submit(TinyRequest(mb)));
  }
  service.Shutdown(/*cancel_inflight=*/false);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok()) << f.get().status;
  }
  // The service no longer admits.
  const PlanResponse refused = service.Plan(TinyRequest(9));
  EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
}

TEST(PlanService, ShutdownWithCancelTripsQueuedRequests) {
  ServeOptions options;
  options.num_workers = 1;  // serialize, so later submits sit in the queue
  options.stall_for_test = 0.1;
  PlanService service(options);

  std::vector<std::shared_future<PlanResponse>> futures;
  for (int mb = 1; mb <= 3; ++mb) {
    futures.push_back(service.Submit(TinyRequest(mb)));
  }
  service.Shutdown(/*cancel_inflight=*/true);
  int ok = 0, cancelled = 0;
  for (auto& f : futures) {
    const PlanResponse r = f.get();  // every future is satisfied regardless
    if (r.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, 3);
  EXPECT_GE(cancelled, 1);  // at least the queued tail was cancelled
}

TEST(PlanService, CacheOnAndOffProduceIdenticalPlans) {
  ServeOptions cached;
  ServeOptions uncached;
  uncached.enable_cache = false;
  PlanService with_cache(cached);
  PlanService without_cache(uncached);

  const PlanResponse a = with_cache.Plan(TinyRequest());
  const PlanResponse b = without_cache.Plan(TinyRequest());
  const PlanResponse b2 = without_cache.Plan(TinyRequest());
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_FALSE(b2.cache_hit);  // no cache to hit
  EXPECT_EQ(ConfigBytes(a), ConfigBytes(b));
  EXPECT_EQ(ConfigBytes(b), ConfigBytes(b2));
  EXPECT_EQ(without_cache.stats().searches, 2u);
}

// ---------------------------------------------------------------------------
// End-to-end over a Unix-domain socket
// ---------------------------------------------------------------------------

TEST(ServeE2e, PlanPingStatsShutdownOverUnixSocket) {
  const std::string socket_path =
      "/tmp/harmony_serve_test_" + std::to_string(::getpid()) + ".sock";
  ServeOptions service_options;
  service_options.num_workers = 2;
  PlanService service(service_options);
  serve::ServerOptions server_options;
  server_options.unix_path = socket_path;
  serve::PlanServer server(&service, server_options);
  ASSERT_TRUE(server.Listen().ok());
  server.Start();

  serve::ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path).ok());
  EXPECT_TRUE(client.Ping().ok());

  const auto cold = client.Plan(TinyRequest());
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(cold.value().status.ok()) << cold.value().status;
  EXPECT_FALSE(cold.value().cache_hit);

  const auto warm = client.Plan(TinyRequest());
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_EQ(ConfigBytes(warm.value()), ConfigBytes(cold.value()));

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const json::Value* svc = stats.value().Find("service");
  ASSERT_NE(svc, nullptr);
  int64_t completed = 0;
  EXPECT_TRUE(json::ReadInt64(*svc, "completed", &completed).ok());
  EXPECT_GE(completed, 2);

  // Concurrent clients on their own connections all get served.
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&socket_path]() {
      serve::ServeClient c;
      ASSERT_TRUE(c.ConnectUnix(socket_path).ok());
      const auto r = c.Plan(TinyRequest());
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r.value().status.ok());
      EXPECT_TRUE(r.value().cache_hit);
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(client.Shutdown().ok());
  server.Wait();  // the daemon drains and stops
  EXPECT_TRUE(server.stopped());

  // The endpoint is gone: a fresh connect must fail cleanly.
  serve::ServeClient late;
  EXPECT_FALSE(late.ConnectUnix(socket_path).ok());
  ::unlink(socket_path.c_str());
}

// ---------------------------------------------------------------------------
// Client-side self-healing (PlanWithRetry)
// ---------------------------------------------------------------------------

TEST(ServeE2e, RetryRidesOutLoadShedButNeverPastTheDeadline) {
  const std::string socket_path =
      "/tmp/harmony_retry_test_" + std::to_string(::getpid()) + ".sock";
  ServeOptions service_options;
  service_options.num_workers = 1;
  service_options.max_pending = 1;
  service_options.retry_after_ms = 20;
  service_options.stall_for_test = 0.3;  // holds the admission budget
  PlanService service(service_options);
  serve::ServerOptions server_options;
  server_options.unix_path = socket_path;
  serve::PlanServer server(&service, server_options);
  ASSERT_TRUE(server.Listen().ok());
  server.Start();

  // Occupy the whole admission budget in-process, so socket clients are
  // load-shed until the stalled search drains.
  auto inflight = service.Submit(TinyRequest(4));

  // A deadline-bound client must surface the rejection once no retry fits
  // before its deadline — never sleep past it, never hang.
  {
    serve::ServeClient client;
    ASSERT_TRUE(client.ConnectUnix(socket_path).ok());
    serve::ServeClient::RetryOptions retry;
    retry.max_retries = 20;
    retry.seed = 7;
    PlanRequest bounded = TinyRequest(8);
    bounded.deadline_ms = 40;
    const auto start = std::chrono::steady_clock::now();
    const auto shed = client.PlanWithRetry(bounded, retry);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ASSERT_TRUE(shed.ok()) << shed.status();
    EXPECT_EQ(shed.value().status.code(), StatusCode::kResourceExhausted)
        << shed.value().status;
    EXPECT_LT(waited, 0.25);  // gave up before the budget drained, by deadline
  }

  // An unbounded client rides the shed out: backs off (honoring the server's
  // retry-after floor) and lands once the worker frees up.
  serve::ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path).ok());
  serve::ServeClient::RetryOptions retry;
  retry.max_retries = 20;
  retry.seed = 0x72657472;  // fixed: deterministic backoff schedule
  const auto response = client.PlanWithRetry(TinyRequest(8), retry);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response.value().status.ok()) << response.value().status;
  EXPECT_GE(client.retries(), 1);

  EXPECT_TRUE(inflight.get().status.ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server.Wait();
  ::unlink(socket_path.c_str());
}

TEST(ServeE2e, RetryReconnectsAfterPeerClose) {
  const std::string socket_path =
      "/tmp/harmony_reconnect_test_" + std::to_string(::getpid()) + ".sock";
  // A fake daemon accepts one connection and slams it shut — what a
  // restarting (or LIFO-shedding) server looks like from the client side.
  auto listener = net::ListenUnix(socket_path);
  ASSERT_TRUE(listener.ok()) << listener.status();
  serve::ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path).ok());
  auto conn = net::Accept(listener.value());
  ASSERT_TRUE(conn.ok()) << conn.status();
  net::CloseFd(conn.value());
  net::CloseFd(listener.value());
  ::unlink(socket_path.c_str());

  // The real daemon takes over the same endpoint.
  PlanService service{ServeOptions{}};
  serve::ServerOptions server_options;
  server_options.unix_path = socket_path;
  serve::PlanServer server(&service, server_options);
  ASSERT_TRUE(server.Listen().ok());
  server.Start();

  // The client's first attempt hits the closed peer; with retries armed it
  // re-dials the saved endpoint and completes against the new daemon.
  serve::ServeClient::RetryOptions retry;
  retry.max_retries = 3;
  retry.seed = 1;
  const auto response = client.PlanWithRetry(TinyRequest(), retry);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response.value().status.ok()) << response.value().status;
  EXPECT_GE(client.retries(), 1);

  EXPECT_TRUE(client.Shutdown().ok());
  server.Wait();
  ::unlink(socket_path.c_str());
}

}  // namespace
}  // namespace harmony
