// PlanCache unit tests: hit/miss identity, LRU displacement under a byte
// budget, counter accounting, and concurrent access across shards.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "serve/plan_cache.h"

namespace harmony {
namespace {

using serve::CachedPlan;
using serve::CacheStats;
using serve::PlanCache;

/// Stand-in for the canonical request JSON the fingerprint hashes.
std::string Canon(int u_fwd) { return "request-" + std::to_string(u_fwd); }

std::shared_ptr<const CachedPlan> MakePlan(int u_fwd) {
  auto plan = std::make_shared<CachedPlan>();
  plan->canonical_request = Canon(u_fwd);
  plan->config.u_fwd = u_fwd;
  plan->config.u_bwd = 1;
  plan->config.fwd_packs = {{0, 9}, {10, 18}};
  plan->config.bwd_packs = {{0, 18}};
  return plan;
}

TEST(PlanCache, HitReturnsTheInsertedPlan) {
  PlanCache cache(/*byte_budget=*/1 << 20, /*num_shards=*/4);
  EXPECT_EQ(cache.Lookup(42, Canon(4)), nullptr);
  auto plan = MakePlan(4);
  cache.Insert(42, plan);
  const auto hit = cache.Lookup(42, Canon(4));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), plan.get());  // shared, not copied
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PlanCache, DuplicateInsertKeepsFirstEntry) {
  PlanCache cache(1 << 20, 1);
  auto first = MakePlan(2);
  cache.Insert(7, first);
  cache.Insert(7, MakePlan(2));  // deterministic searches: same content
  EXPECT_EQ(cache.Lookup(7, Canon(2)).get(), first.get());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCache, FingerprintCollisionDegradesToMiss) {
  // Two distinct requests that (hypothetically) hash to the same 64-bit
  // fingerprint: the canonical bytes disagree, so the second must miss
  // instead of being served the first request's plan.
  PlanCache cache(1 << 20, 1);
  cache.Insert(42, MakePlan(1));
  EXPECT_EQ(cache.Lookup(42, Canon(2)), nullptr);
  EXPECT_NE(cache.Lookup(42, Canon(1)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PlanCache, LruEvictionUnderTinyBudget) {
  // Single shard so recency order is fully observable. Budget fits ~2 plans.
  const size_t plan_bytes = MakePlan(1)->ApproxBytes();
  PlanCache cache(2 * plan_bytes, /*num_shards=*/1);
  cache.Insert(1, MakePlan(1));
  cache.Insert(2, MakePlan(2));
  // Refresh 1, then insert 3: the LRU entry is now 2.
  ASSERT_NE(cache.Lookup(1, Canon(1)), nullptr);
  cache.Insert(3, MakePlan(3));
  EXPECT_NE(cache.Lookup(1, Canon(1)), nullptr);
  EXPECT_EQ(cache.Lookup(2, Canon(2)), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(3, Canon(3)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 2 * plan_bytes);
}

TEST(PlanCache, OversizePlanIsServedButNotCached) {
  PlanCache cache(/*byte_budget=*/8, /*num_shards=*/1);  // smaller than any plan
  cache.Insert(1, MakePlan(1));
  EXPECT_EQ(cache.Lookup(1, Canon(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(PlanCache, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache(1 << 20, 4);
  cache.Insert(1, MakePlan(1));
  cache.Insert(2, MakePlan(2));
  ASSERT_NE(cache.Lookup(1, Canon(1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1, Canon(1)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.insertions, 2u);  // monotonic counters survive
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PlanCache, ConcurrentMixedAccessIsSafe) {
  PlanCache cache(1 << 20, 16);
  constexpr int kThreads = 8, kOps = 1998;  // divisible by 3: exact op split
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t]() {
      for (int i = 0; i < kOps; ++i) {
        // Spread keys across shards (shard index uses the high bits).
        const uint64_t key = (static_cast<uint64_t>(i % 64) << 48) | (i % 64);
        if ((i + t) % 3 == 0) {
          cache.Insert(key, MakePlan(i % 64));
        } else {
          const auto hit = cache.Lookup(key, Canon(i % 64));
          if (hit != nullptr) {
            EXPECT_EQ(hit->config.u_fwd, i % 64);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOps * 2 / 3);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace harmony
