#include <gtest/gtest.h>

#include "common/rng.h"
#include "nphard/reduction.h"

namespace harmony::nphard {
namespace {

using core::Pack;
using core::PackList;

TEST(Makespan, SingleGpuIsSerial) {
  SchedulingInstance inst;
  inst.num_microbatches = 2;
  inst.num_gpus = 1;
  inst.memory = 10;
  inst.times = {1.0, 2.0, 3.0};
  inst.sizes = {1, 1, 1};
  // One pack: (1+2+3) * 2 microbatches.
  EXPECT_DOUBLE_EQ(Makespan(inst, {Pack{0, 2}}), 12.0);
  // Split packs on one GPU: same total, no overlap possible.
  EXPECT_DOUBLE_EQ(Makespan(inst, {Pack{0, 0}, Pack{1, 2}}), 12.0);
}

TEST(Makespan, PerfectPipelineOnTwoGpus) {
  // Two equal packs, two GPUs, B microbatches: makespan = (B + 1) * p.
  SchedulingInstance inst;
  inst.num_microbatches = 3;
  inst.num_gpus = 2;
  inst.memory = 10;
  inst.times = {2.0, 2.0};
  inst.sizes = {1, 1};
  EXPECT_DOUBLE_EQ(Makespan(inst, {Pack{0, 0}, Pack{1, 1}}), 8.0);
}

TEST(Makespan, BottleneckPackDominates) {
  SchedulingInstance inst;
  inst.num_microbatches = 4;
  inst.num_gpus = 2;
  inst.memory = 10;
  inst.times = {1.0, 5.0};
  inst.sizes = {1, 1};
  // Slow pack processes 4 microbatches serially after a 1s offset.
  EXPECT_DOUBLE_EQ(Makespan(inst, {Pack{0, 0}, Pack{1, 1}}), 1.0 + 4 * 5.0);
}

TEST(Feasible, MemoryConstraint) {
  SchedulingInstance inst;
  inst.memory = 5;
  inst.times = {1, 1, 1};
  inst.sizes = {3, 3, 3};
  EXPECT_TRUE(Feasible(inst, {Pack{0, 0}, Pack{1, 1}, Pack{2, 2}}));
  EXPECT_FALSE(Feasible(inst, {Pack{0, 1}, Pack{2, 2}}));
}

TEST(Reduction, InstanceShapeMatchesTable2) {
  const auto inst = ReduceFromPartition({6, 2, 4});
  EXPECT_EQ(inst.num_layers(), 3 * 3 + 4);
  EXPECT_EQ(inst.num_microbatches, 3);
  EXPECT_EQ(inst.num_gpus, 2);
  EXPECT_EQ(inst.memory, 7);
  const double big = 6.0 * 12;  // A = 6 * sum
  EXPECT_DOUBLE_EQ(inst.times[0], 8 * big);
  EXPECT_EQ(inst.sizes[0], 6);
  EXPECT_DOUBLE_EQ(inst.times[3], 6.0);  // a_1
  EXPECT_EQ(inst.sizes[3], 2);
}

TEST(Reduction, YesInstanceAttainsTarget) {
  // (6,2,4): partition {6} vs {2,4} exists.
  const auto inst = ReduceFromPartition({6, 2, 4});
  const double opt = BruteForceOptimalMakespan(inst);
  EXPECT_NEAR(opt, TargetMakespan(inst), 1e-6);
}

TEST(Reduction, NoInstanceExceedsTarget) {
  // (3,5,7): odd sum, no partition.
  const auto inst = ReduceFromPartition({3, 5, 7});
  const double opt = BruteForceOptimalMakespan(inst);
  EXPECT_GT(opt, TargetMakespan(inst) + 1e-6);
}

TEST(Reduction, BalancedSolutionFromProofAchievesT) {
  // Fig 17(a): a_1=6 packs with its predecessor (GPU 1 side), a_2, a_3 with
  // their successors (GPU 2 side).
  const std::vector<int64_t> a = {6, 2, 4};
  const auto inst = ReduceFromPartition(a);
  const PackList packs = {
      Pack{0, 0}, Pack{1, 1},
      Pack{2, 3}, Pack{4, 4},    // {3i, 3i+1}, {3i+2} for i=1 (a_1 -> GPU 1)
      Pack{5, 5}, Pack{6, 7},    // {3i}, {3i+1, 3i+2} for i=2 (a_2 -> GPU 2)
      Pack{8, 8}, Pack{9, 10},   // i=3 (a_3 -> GPU 2)
      Pack{11, 11}, Pack{12, 12}};
  ASSERT_TRUE(Feasible(inst, packs));
  EXPECT_NEAR(Makespan(inst, packs), TargetMakespan(inst), 1e-6);
}

TEST(Reduction, SingletonMiddleLayerIsSuboptimal) {
  // Fig 17(b): putting layer 3i+1 alone forces unforced idle time.
  const auto inst = ReduceFromPartition({6, 2, 4});
  const PackList packs = {Pack{0, 0}, Pack{1, 1}, Pack{2, 2}, Pack{3, 3},
                          Pack{4, 4}, Pack{5, 5}, Pack{6, 6}, Pack{7, 7},
                          Pack{8, 8}, Pack{9, 9}, Pack{10, 10}, Pack{11, 11},
                          Pack{12, 12}};
  ASSERT_TRUE(Feasible(inst, packs));
  EXPECT_GT(Makespan(inst, packs), TargetMakespan(inst) + 1e-6);
}

TEST(Partition, OracleBasics) {
  EXPECT_TRUE(PartitionFeasible({1, 1}));
  EXPECT_TRUE(PartitionFeasible({3, 1, 2}));
  EXPECT_FALSE(PartitionFeasible({1, 2}));
  EXPECT_FALSE(PartitionFeasible({2, 4, 16}));
}

// Property test: over random small Partition instances, the reduction's
// optimal makespan equals T exactly when the instance is feasible — the
// equivalence at the heart of the NP-hardness proof (Proposition A.2).
class ReductionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReductionEquivalence, MakespanEqualsTargetIffPartitionFeasible) {
  Rng rng(GetParam() * 1337 + 11);
  const int n = 2 + static_cast<int>(rng.NextBounded(2));  // 2..3 numbers
  std::vector<int64_t> a;
  for (int i = 0; i < n; ++i) a.push_back(1 + rng.NextInt(0, 9));
  const bool feasible = PartitionFeasible(a);
  const auto inst = ReduceFromPartition(a);
  const double opt = BruteForceOptimalMakespan(inst);
  const double target = TargetMakespan(inst);
  if (feasible) {
    EXPECT_NEAR(opt, target, 1e-6) << ::testing::PrintToString(a);
  } else {
    EXPECT_GT(opt, target + 1e-9) << ::testing::PrintToString(a);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPartitions, ReductionEquivalence,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace harmony::nphard
