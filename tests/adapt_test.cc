// The adapt layer: heterogeneous machine descriptors, the health monitor's
// trace-driven degradation model, and the end-to-end detect -> re-plan ->
// switchover loop.
//
// The end-to-end invariants mirror ISSUE/DESIGN.md §14 exactly:
//   * under a seeded persistent link degradation the loop detects, re-plans
//     and switches at an iteration boundary;
//   * the chosen plan is bit-identical to what Algorithm 1 returns for the
//     degraded MachineSpec;
//   * post-switchover accounting is bit-identical to a fresh run on that
//     descriptor;
//   * with replan off the same schedule reproduces the plain training loop
//     bit-for-bit.
// Everything is deterministic from the fault plan alone (persistent faults
// use no RNG draws), so every EXPECT below is exact — no tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adapt/health.h"
#include "adapt/planner.h"
#include "adapt/runner.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "model/models.h"
#include "runtime/runtime.h"
#include "serve/wire.h"
#include "trace/trace.h"

namespace harmony::adapt {
namespace {

using core::HarmonyMode;

// ---------------------------------------------------------------------------
// Heterogeneous MachineSpec
// ---------------------------------------------------------------------------

TEST(HeteroMachine, HomogeneousAccessorsMatchSharedGpu) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  EXPECT_TRUE(m.per_gpu.empty());
  EXPECT_TRUE(m.link_bw_scale.empty());
  for (int g = 0; g < m.num_gpus; ++g) {
    EXPECT_EQ(m.GpuAt(g).name, m.gpu.name);
  }
  EXPECT_EQ(m.MinUsableMemory(), m.gpu.usable_memory());
  EXPECT_EQ(m.PlanningGpu().peak_flops, m.gpu.peak_flops);
  EXPECT_EQ(m.MinGpuLinkScale(), 1.0);
  EXPECT_EQ(m.MinHostMemScale(), 1.0);
  // Bit-identical to the historical planner arithmetic.
  for (int n = 1; n <= m.num_gpus; ++n) {
    EXPECT_EQ(m.EffectiveSwapBw(n),
              std::min(m.pcie_bw, m.host_mem_bw / std::max(1, n)));
  }
  EXPECT_EQ(m.EffectiveP2pBw(), m.pcie_bw);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(HeteroMachine, GpuOverridesDriveFleetMinima) {
  hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  hw::GpuSpec weak = m.gpu;
  weak.name = "weak";
  weak.memory_capacity = GiB(8.0);
  weak.peak_flops = 5e12;
  m = m.WithGpuOverride(2, weak);

  ASSERT_EQ(m.per_gpu.size(), 4u);
  EXPECT_EQ(m.GpuAt(2).name, "weak");
  EXPECT_EQ(m.GpuAt(0).name, m.gpu.name);
  EXPECT_EQ(m.MinUsableMemory(), weak.usable_memory());
  EXPECT_EQ(m.PlanningGpu().peak_flops, 5e12);
  EXPECT_EQ(m.PlanningGpu().name, "weak");
  EXPECT_TRUE(m.Validate().ok());
}

TEST(HeteroMachine, LinkScalesComposeAndFoldIntoSwapBw) {
  hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  const int link = m.LinkGpuUp(1);
  m = m.WithLinkScale(link, 0.5);
  ASSERT_EQ(m.link_bw_scale.size(), static_cast<size_t>(m.NumLinks()));
  EXPECT_EQ(m.LinkScaleAt(link), 0.5);
  // Factors compose multiplicatively.
  m = m.WithLinkScale(link, 0.5);
  EXPECT_EQ(m.LinkScaleAt(link), 0.25);
  EXPECT_EQ(m.MinGpuLinkScale(), 0.25);
  EXPECT_EQ(m.MinHostMemScale(), 1.0);
  EXPECT_EQ(m.EffectiveSwapBw(1), std::min(m.pcie_bw * 0.25, m.host_mem_bw));

  // A host DRAM-side degradation scales the shared-bandwidth term instead.
  hw::MachineSpec h =
      hw::MachineSpec::Commodity4Gpu().WithLinkScale(
          hw::MachineSpec::Commodity4Gpu().LinkHostWrite(), 0.5);
  EXPECT_EQ(h.MinGpuLinkScale(), 1.0);
  EXPECT_EQ(h.MinHostMemScale(), 0.5);
  EXPECT_EQ(h.EffectiveSwapBw(4),
            std::min(h.pcie_bw, h.host_mem_bw * 0.5 / 4));

  // A degraded switch uplink sits on every swap and cross-switch p2p path,
  // so it becomes an extra min term — but only when actually degraded: a
  // nominal uplink must leave both effective bandwidths bit-identical to
  // the homogeneous arithmetic (EXPECT_EQ above already covers that, since
  // WithLinkScale materialized all-1.0 uplink entries).
  hw::MachineSpec u = hw::MachineSpec::Commodity4Gpu();
  u = u.WithLinkScale(u.LinkSwitchUp(0), 0.02);
  EXPECT_EQ(u.MinSwitchLinkScale(), 0.02);
  EXPECT_EQ(u.EffectiveSwapBw(4),
            std::min({u.pcie_bw, u.host_mem_bw / 4, u.uplink_bw * 0.02}));
  EXPECT_EQ(u.EffectiveP2pBw(), std::min(u.pcie_bw, u.uplink_bw * 0.02));
}

TEST(HeteroMachine, WithNumGpusSlicesOverridesAndDropsLinkScales) {
  hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu();
  hw::GpuSpec weak = m.gpu;
  weak.memory_capacity = GiB(8.0);
  m = m.WithGpuOverride(1, weak)
          .WithGpuOverride(6, weak)
          .WithLinkScale(m.LinkGpuUp(0), 0.5);
  const hw::MachineSpec sliced = m.WithNumGpus(2);
  ASSERT_EQ(sliced.per_gpu.size(), 2u);
  EXPECT_EQ(sliced.GpuAt(1).memory_capacity, GiB(8.0));
  // Link ids renumber when the topology shrinks, so stale scales must not
  // survive the slice.
  EXPECT_TRUE(sliced.link_bw_scale.empty());
  EXPECT_TRUE(sliced.Validate().ok());
}

TEST(HeteroMachine, ValidateRejectsMalformedOverrides) {
  hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  m.per_gpu.resize(2, m.gpu);  // wrong size: must be num_gpus or empty
  EXPECT_FALSE(m.Validate().ok());

  hw::MachineSpec s = hw::MachineSpec::Commodity4Gpu();
  s.link_bw_scale.assign(3, 1.0);  // wrong size: must be NumLinks() or empty
  EXPECT_FALSE(s.Validate().ok());

  hw::MachineSpec z = hw::MachineSpec::Commodity4Gpu();
  z.link_bw_scale.assign(static_cast<size_t>(z.NumLinks()), 1.0);
  z.link_bw_scale[0] = 0.0;  // non-positive capacity factor
  EXPECT_FALSE(z.Validate().ok());

  hw::MachineSpec g = hw::MachineSpec::Commodity4Gpu();
  g.per_gpu.assign(static_cast<size_t>(g.num_gpus), g.gpu);
  g.per_gpu[3].memory_capacity = 0;
  EXPECT_FALSE(g.Validate().ok());
}

// ---------------------------------------------------------------------------
// HealthMonitor
// ---------------------------------------------------------------------------

trace::Event LinkFaultEvent(bool injected, int link, double factor) {
  trace::Event e;
  e.kind = injected ? trace::EventKind::kFaultInjected
                    : trace::EventKind::kFaultRecovered;
  e.lane = trace::Lane::kNet;
  e.detail = fault::FaultKindName(fault::FaultKind::kLinkDegrade);
  e.task = link;
  e.bytes = injected ? fault::EncodeFactorPpt(factor) : 0;
  return e;
}

trace::Event MemFaultEvent(bool injected, int device, Bytes stolen) {
  trace::Event e;
  e.kind = injected ? trace::EventKind::kFaultInjected
                    : trace::EventKind::kFaultRecovered;
  e.lane = trace::Lane::kAlloc;
  e.detail = fault::FaultKindName(fault::FaultKind::kMemPressure);
  e.device = device;
  e.bytes = injected ? stolen : 0;
  return e;
}

TEST(HealthMonitor, FactorEncodingRoundTripsExactly) {
  for (const double f : {0.25, 0.02, 0.5, 1.0, 0.125}) {
    EXPECT_EQ(fault::DecodeFactorPpt(fault::EncodeFactorPpt(f)), f);
  }
}

TEST(HealthMonitor, SelfHealingFlapLeavesNoResidual) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  HealthMonitor monitor(m);
  monitor.OnEvent(LinkFaultEvent(true, m.LinkGpuUp(0), 0.25));
  monitor.OnEvent(LinkFaultEvent(false, m.LinkGpuUp(0), 0.0));
  for (int i = 0; i < 4; ++i) {
    const HealthAssessment a = monitor.EndIteration();
    EXPECT_FALSE(a.degraded);
    EXPECT_FALSE(a.replan);
    EXPECT_EQ(a.consecutive_degraded, 0);
  }
  EXPECT_EQ(monitor.faults_seen(), 2);
}

TEST(HealthMonitor, PersistentLinkFaultTripsAfterHysteresis) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  const int link = m.LinkSwitchUp(0);
  HealthMonitor monitor(m);  // default hysteresis: 2 iterations
  monitor.OnEvent(LinkFaultEvent(true, link, 0.25));

  HealthAssessment a = monitor.EndIteration();
  EXPECT_TRUE(a.degraded);
  EXPECT_STREQ(a.reason, "link-degrade");
  EXPECT_EQ(a.consecutive_degraded, 1);
  EXPECT_FALSE(a.replan) << "one bad iteration must not trigger a re-plan";

  a = monitor.EndIteration();  // still degraded: no recovery event arrived
  EXPECT_TRUE(a.replan);
  EXPECT_EQ(a.consecutive_degraded, 2);
}

TEST(HealthMonitor, SynthesizedSpecSnapsToObservedValuesExactly) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  const int link = m.LinkSwitchUp(1);
  const Bytes stolen = GiB(2.0);
  HealthMonitor monitor(m);
  monitor.OnEvent(LinkFaultEvent(true, link, 0.25));
  monitor.OnEvent(MemFaultEvent(true, 1, stolen));
  monitor.EndIteration();

  const hw::MachineSpec degraded = monitor.SynthesizeSpec();
  ASSERT_TRUE(degraded.Validate().ok());
  // The link factor is the exact last-observed sample, not the EWMA: the
  // EWMA only decides *when* to re-plan, never what the machine looks like.
  EXPECT_EQ(degraded.LinkScaleAt(link), 0.25);
  // Memory loss lands as capacity' = usable - stolen at fraction 1.0, so the
  // usable budget drops by exactly the stolen bytes in integer arithmetic.
  EXPECT_EQ(degraded.GpuAt(1).usable_memory(),
            m.GpuAt(1).usable_memory() - stolen);
  EXPECT_EQ(degraded.GpuAt(1).usable_fraction, 1.0);
  EXPECT_EQ(degraded.GpuAt(0).usable_memory(), m.GpuAt(0).usable_memory());
  // Semantics identical to building the same machine by hand.
  EXPECT_EQ(serve::MachineSpecToJson(degraded).Dump().find("per_gpu") !=
                std::string::npos,
            true);
}

TEST(HealthMonitor, RecoveryResetsTheHysteresisCounter) {
  const hw::MachineSpec m = hw::MachineSpec::Commodity4Gpu();
  HealthOptions opts;
  opts.hysteresis_iterations = 3;
  HealthMonitor monitor(m, opts);
  monitor.OnEvent(LinkFaultEvent(true, 0, 0.25));
  EXPECT_EQ(monitor.EndIteration().consecutive_degraded, 1);
  EXPECT_EQ(monitor.EndIteration().consecutive_degraded, 2);
  monitor.OnEvent(LinkFaultEvent(false, 0, 0.0));
  // EWMA decays back above the deviation threshold within a few healthy
  // iterations; the counter must restart from zero, not resume.
  HealthAssessment a;
  for (int i = 0; i < 8; ++i) a = monitor.EndIteration();
  EXPECT_FALSE(a.degraded);
  EXPECT_EQ(a.consecutive_degraded, 0);
}

// ---------------------------------------------------------------------------
// End-to-end: detect -> re-plan -> switchover
// ---------------------------------------------------------------------------

/// Counts the replan lifecycle events published to the attached sinks.
class ReplanEventSink : public trace::TraceSink {
 public:
  void OnEvent(const trace::Event& e) override {
    switch (e.kind) {
      case trace::EventKind::kReplanTriggered: ++triggered_; break;
      case trace::EventKind::kReplanApplied: ++applied_; break;
      case trace::EventKind::kReplanRejected: ++rejected_; break;
      default: break;
    }
  }
  int triggered() const { return triggered_; }
  int applied() const { return applied_; }
  int rejected() const { return rejected_; }

 private:
  int triggered_ = 0;
  int applied_ = 0;
  int rejected_ = 0;
};

fault::FaultPlan PersistentLinkFail(const hw::MachineSpec& m) {
  fault::FaultPlan fp;
  fp.enabled = true;
  fp.seed = 7;
  fp.link_fail_at = 0.005;
  fp.link_fail_link = m.LinkSwitchUp(0);  // shared uplink: hurts every swap
  fp.link_fail_factor = 0.02;
  return fp;
}

model::SequentialModel ModelFor(const serve::ModelSpec& spec) {
  auto graph = serve::BuildModel(spec);
  EXPECT_TRUE(graph.ok()) << graph.status();
  return model::Sequentialize(graph.value());
}

TEST(AdaptEndToEnd, PersistentLinkFailureConvergesToDegradedPlan) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto spec = serve::ModelSpec::FromName("BERT96");
  ASSERT_TRUE(spec.ok());
  const fault::FaultPlan fp = PersistentLinkFail(machine);

  ReplanEventSink events;
  AdaptOptions ao;
  ao.iterations = 4;
  ao.replan_margin = -1.0;  // accept any candidate: this test pins mechanics
  ao.fault_plan = fp;
  ao.trace_sinks.push_back(&events);
  AdaptiveRunner runner(machine, spec.value(), HarmonyMode::kPipelineParallel,
                        8, {}, {}, ao);
  const auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status();
  const AdaptResult& ar = run.value();

  // Detection honors hysteresis (2 iterations) and fires exactly once.
  EXPECT_EQ(ar.replans_triggered, 1);
  ASSERT_EQ(ar.decisions.size(), 1u);
  EXPECT_TRUE(ar.decisions[0].applied);
  EXPECT_EQ(ar.decisions[0].iteration, 1);
  EXPECT_STREQ(ar.decisions[0].reason, "link-degrade");
  EXPECT_TRUE(ar.switched);
  EXPECT_EQ(ar.switch_iteration, 2);
  ASSERT_EQ(ar.iterations.size(), 4u);
  EXPECT_EQ(events.triggered(), 1);
  EXPECT_EQ(events.applied(), 1);
  EXPECT_EQ(events.rejected(), 0);

  // The synthesized machine is bit-identical to scaling the failed link by
  // the injected factor on the nominal descriptor.
  const hw::MachineSpec degraded =
      machine.WithLinkScale(fp.link_fail_link, fp.link_fail_factor);
  EXPECT_EQ(serve::MachineSpecToJson(ar.machine).Dump(),
            serve::MachineSpecToJson(degraded).Dump());

  // The chosen plan is bit-identical to Algorithm 1 on the degraded machine.
  const model::SequentialModel model = ModelFor(spec.value());
  const auto fresh = core::Scheduler(degraded).Schedule(
      model, HarmonyMode::kPipelineParallel, 8, {}, {});
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(serve::ConfigurationToJson(ar.config).Dump(),
            serve::ConfigurationToJson(fresh.value().search.best).Dump());

  // Post-switchover accounting matches a fresh run on the degraded
  // descriptor: same machine, same graph, persistent faults stripped (their
  // effect now lives in the MachineSpec).
  const runtime::Runtime rt(degraded, model);
  runtime::RuntimeOptions ro;
  ro.optimizer = serve::DefaultOptimizer(spec.value());
  ro.fault_plan = fp.WithoutPersistent();
  const auto fresh_metrics = rt.Execute(fresh.value().graph, ro);
  ASSERT_TRUE(fresh_metrics.ok()) << fresh_metrics.status();
  const std::string want =
      serve::RunMetricsToJson(fresh_metrics.value()).Dump();
  EXPECT_EQ(serve::RunMetricsToJson(ar.iterations[2]).Dump(), want);
  EXPECT_EQ(serve::RunMetricsToJson(ar.iterations[3]).Dump(), want);
}

TEST(AdaptEndToEnd, ReplanOffReproducesThePlainLoopBitForBit) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto spec = serve::ModelSpec::FromName("BERT96");
  ASSERT_TRUE(spec.ok());
  const fault::FaultPlan fp = PersistentLinkFail(machine);

  AdaptOptions ao;
  ao.iterations = 2;
  ao.replan = false;
  ao.fault_plan = fp;
  AdaptiveRunner runner(machine, spec.value(), HarmonyMode::kPipelineParallel,
                        8, {}, {}, ao);
  const auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run.value().iterations.size(), 2u);
  EXPECT_FALSE(run.value().switched);
  EXPECT_TRUE(run.value().decisions.empty());

  // Hand-rolled equivalent: plan once on the nominal machine, execute the
  // same fault schedule twice.
  const model::SequentialModel model = ModelFor(spec.value());
  const auto plan = core::Scheduler(machine).Schedule(
      model, HarmonyMode::kPipelineParallel, 8, {}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(serve::ConfigurationToJson(run.value().config).Dump(),
            serve::ConfigurationToJson(plan.value().search.best).Dump());
  const runtime::Runtime rt(machine, model);
  for (int i = 0; i < 2; ++i) {
    runtime::RuntimeOptions ro;
    ro.optimizer = serve::DefaultOptimizer(spec.value());
    ro.fault_plan = fp;
    const auto metrics = rt.Execute(plan.value().graph, ro);
    ASSERT_TRUE(metrics.ok());
    EXPECT_EQ(serve::RunMetricsToJson(run.value().iterations[i]).Dump(),
              serve::RunMetricsToJson(metrics.value()).Dump());
  }
}

TEST(AdaptEndToEnd, BelowMarginCandidateIsRejected) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto spec = serve::ModelSpec::FromName("BERT96");
  ASSERT_TRUE(spec.ok());

  ReplanEventSink events;
  AdaptOptions ao;
  ao.iterations = 4;
  ao.replan_margin = 99.0;  // no candidate can clear this bar
  ao.fault_plan = PersistentLinkFail(machine);
  ao.trace_sinks.push_back(&events);
  AdaptiveRunner runner(machine, spec.value(), HarmonyMode::kPipelineParallel,
                        8, {}, {}, ao);
  const auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status();
  const AdaptResult& ar = run.value();

  EXPECT_EQ(ar.replans_triggered, 1);
  ASSERT_EQ(ar.decisions.size(), 1u);
  EXPECT_FALSE(ar.decisions[0].applied);
  EXPECT_STREQ(ar.decisions[0].reason, "below-margin");
  EXPECT_GT(ar.decisions[0].old_estimate_seconds, 0.0);
  EXPECT_FALSE(ar.switched);
  EXPECT_EQ(events.rejected(), 1);
  EXPECT_EQ(events.applied(), 0);
  // The machine and plan stay nominal; every iteration replays identically.
  EXPECT_EQ(serve::MachineSpecToJson(ar.machine).Dump(),
            serve::MachineSpecToJson(machine).Dump());
  const std::string first = serve::RunMetricsToJson(ar.iterations[0]).Dump();
  for (size_t i = 1; i < ar.iterations.size(); ++i) {
    EXPECT_EQ(serve::RunMetricsToJson(ar.iterations[i]).Dump(), first);
  }
}

TEST(AdaptEndToEnd, MemShrinkReplansOntoSmallerDevice) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto spec = serve::ModelSpec::FromName("BERT96");
  ASSERT_TRUE(spec.ok());
  fault::FaultPlan fp;
  fp.enabled = true;
  fp.seed = 11;
  fp.mem_shrink_at = 0.005;
  fp.mem_shrink_device = 1;
  fp.mem_shrink_fraction = 0.3;

  AdaptOptions ao;
  ao.iterations = 4;
  ao.replan_margin = -1.0;
  ao.fault_plan = fp;
  AdaptiveRunner runner(machine, spec.value(), HarmonyMode::kPipelineParallel,
                        8, {}, {}, ao);
  const auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status();
  const AdaptResult& ar = run.value();

  ASSERT_EQ(ar.decisions.size(), 1u);
  EXPECT_TRUE(ar.decisions[0].applied);
  EXPECT_STREQ(ar.decisions[0].reason, "mem-shrink");
  ASSERT_TRUE(ar.switched);

  // The synthesized fleet is heterogeneous: device 1 shrank, others did not.
  EXPECT_LT(ar.machine.GpuAt(1).usable_memory(),
            machine.GpuAt(1).usable_memory());
  EXPECT_EQ(ar.machine.GpuAt(1).usable_fraction, 1.0);
  EXPECT_EQ(ar.machine.GpuAt(0).usable_memory(),
            machine.GpuAt(0).usable_memory());
  EXPECT_EQ(ar.machine.MinUsableMemory(), ar.machine.GpuAt(1).usable_memory());

  // Plan and post-switchover accounting both match a fresh pipeline on the
  // synthesized descriptor.
  const model::SequentialModel model = ModelFor(spec.value());
  const auto fresh = core::Scheduler(ar.machine).Schedule(
      model, HarmonyMode::kPipelineParallel, 8, {}, {});
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(serve::ConfigurationToJson(ar.config).Dump(),
            serve::ConfigurationToJson(fresh.value().search.best).Dump());
  const runtime::Runtime rt(ar.machine, model);
  runtime::RuntimeOptions ro;
  ro.optimizer = serve::DefaultOptimizer(spec.value());
  ro.fault_plan = fp.WithoutPersistent();
  const auto fresh_metrics = rt.Execute(fresh.value().graph, ro);
  ASSERT_TRUE(fresh_metrics.ok()) << fresh_metrics.status();
  EXPECT_EQ(serve::RunMetricsToJson(ar.iterations[3]).Dump(),
            serve::RunMetricsToJson(fresh_metrics.value()).Dump());
}

TEST(AdaptEndToEnd, Gpt2LinkFailureAlsoConverges) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto spec = serve::ModelSpec::FromName("GPT2");
  ASSERT_TRUE(spec.ok());
  const fault::FaultPlan fp = PersistentLinkFail(machine);

  AdaptOptions ao;
  ao.iterations = 3;
  ao.replan_margin = -1.0;
  ao.fault_plan = fp;
  AdaptiveRunner runner(machine, spec.value(), HarmonyMode::kPipelineParallel,
                        8, {}, {}, ao);
  const auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status();
  const AdaptResult& ar = run.value();
  ASSERT_EQ(ar.decisions.size(), 1u);
  EXPECT_TRUE(ar.decisions[0].applied);
  ASSERT_TRUE(ar.switched);

  const hw::MachineSpec degraded =
      machine.WithLinkScale(fp.link_fail_link, fp.link_fail_factor);
  const model::SequentialModel model = ModelFor(spec.value());
  const auto fresh = core::Scheduler(degraded).Schedule(
      model, HarmonyMode::kPipelineParallel, 8, {}, {});
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(serve::ConfigurationToJson(ar.config).Dump(),
            serve::ConfigurationToJson(fresh.value().search.best).Dump());
}

TEST(AdaptEndToEnd, HealthWindowConvertsToWholeIterations) {
  // A window shorter than one iteration clamps to one iteration of
  // hysteresis, so the re-plan fires a boundary earlier than the default.
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto spec = serve::ModelSpec::FromName("BERT96");
  ASSERT_TRUE(spec.ok());

  AdaptOptions ao;
  ao.iterations = 3;
  ao.replan_margin = -1.0;
  ao.health_window_seconds = 1e-3;
  ao.fault_plan = PersistentLinkFail(machine);
  AdaptiveRunner runner(machine, spec.value(), HarmonyMode::kPipelineParallel,
                        8, {}, {}, ao);
  const auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run.value().decisions.size(), 1u);
  EXPECT_EQ(run.value().decisions[0].iteration, 0);
  EXPECT_EQ(run.value().switch_iteration, 1);
}

}  // namespace
}  // namespace harmony::adapt
