#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/models.h"
#include "profile/profiler.h"

namespace harmony::profile {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  ProfileTest()
      : machine_(hw::MachineSpec::Commodity4Gpu()),
        model_(model::Sequentialize(model::Gpt2())),
        profiler_(machine_.gpu, ProfilerOptions{}),
        db_(profiler_.Profile(model_)) {}

  hw::MachineSpec machine_;
  model::SequentialModel model_;
  Profiler profiler_;
  ProfileDb db_;
};

TEST_F(ProfileTest, CoversAllLayers) {
  EXPECT_EQ(db_.num_layers(), model_.num_layers());
}

TEST_F(ProfileTest, InterpolationIsStrikinglyAccurate) {
  // The paper validates that linear interpolation over sampled microbatch
  // sizes closely predicts unsampled ones (Sec 4.2). Check an unsampled u
  // against ground truth for every layer.
  const model::CostModel cost(machine_.gpu);
  const int unsampled_u = 12;  // samples are powers of two
  for (int l = 0; l < db_.num_layers(); ++l) {
    const double truth = cost.FwdTime(model_.layers[l].spec, unsampled_u);
    const double predicted = db_.FwdTime(l, unsampled_u);
    EXPECT_NEAR(predicted, truth, 0.12 * truth + 1e-5)
        << "layer " << l << " (" << model_.layers[l].spec.name << ")";
  }
}

TEST_F(ProfileTest, RegressionFitsAreTight) {
  for (int l = 0; l < db_.num_layers(); ++l) {
    EXPECT_GT(db_.layer(l).fwd_time.r_squared(), 0.97) << l;
    EXPECT_GT(db_.layer(l).bwd_time.r_squared(), 0.97) << l;
  }
}

TEST_F(ProfileTest, PackQueriesAreSums) {
  const double sum = db_.FwdTime(3, 4) + db_.FwdTime(4, 4) + db_.FwdTime(5, 4);
  EXPECT_NEAR(db_.PackFwdTime(3, 5, 4), sum, 1e-12);
  const Bytes psum = db_.layer(3).param_bytes + db_.layer(4).param_bytes;
  EXPECT_EQ(db_.PackParamBytes(3, 4), psum);
}

TEST_F(ProfileTest, TaskBytesMonotonicInMicrobatchAndPackSize) {
  EXPECT_LT(db_.FwdTaskBytes(1, 4, 2), db_.FwdTaskBytes(1, 4, 8));
  EXPECT_LT(db_.FwdTaskBytes(1, 4, 2), db_.FwdTaskBytes(1, 8, 2));
  EXPECT_LT(db_.BwdTaskBytes(1, 4, 2), db_.BwdTaskBytes(1, 4, 8));
  // Backward tasks carry gradients + rematerialized stash: always bigger.
  EXPECT_GT(db_.BwdTaskBytes(1, 4, 4), db_.FwdTaskBytes(1, 4, 4));
}

TEST_F(ProfileTest, DeterministicGivenSeed) {
  const ProfileDb again = profiler_.Profile(model_);
  for (int l = 0; l < db_.num_layers(); ++l) {
    EXPECT_DOUBLE_EQ(db_.FwdTime(l, 7), again.FwdTime(l, 7));
  }
}

TEST_F(ProfileTest, DifferentSeedsDifferSlightly) {
  ProfilerOptions opts;
  opts.seed = 999;
  const Profiler other(machine_.gpu, opts);
  const ProfileDb other_db = other.Profile(model_);
  // Noise changes measurements a little but not wildly.
  const double a = db_.FwdTime(1, 4), b = other_db.FwdTime(1, 4);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, 0.1 * a);
}

TEST_F(ProfileTest, ProfilingCostIsMinutesNotHours) {
  const TimeSec t = profiler_.ProfilingCost(model_);
  EXPECT_GT(t, 1.0);
  EXPECT_LT(t, 3600.0);
}

TEST_F(ProfileTest, RelayBytesIncludedForResNet) {
  const model::SequentialModel resnet = model::Sequentialize(model::ResNet1K());
  const ProfileDb db = profiler_.Profile(resnet);
  bool any_relay = false;
  for (int l = 0; l < db.num_layers(); ++l) {
    if (db.layer(l).input_bytes_per_sample >
        resnet.layers[l].spec.input_bytes_per_sample) {
      any_relay = true;
    }
  }
  EXPECT_TRUE(any_relay);
}

}  // namespace
}  // namespace harmony::profile
