#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/memory.h"
#include "model/models.h"

namespace harmony::model {
namespace {

double Billions(Bytes param_bytes) {
  return static_cast<double>(param_bytes) / 4.0 / 1e9;
}

TEST(Models, LayerCountsMatchPaperTables) {
  // Table 5's pack indices imply these layer counts.
  EXPECT_EQ(Gpt2().num_layers(), 52);       // L0..L51
  EXPECT_EQ(Bert96().num_layers(), 100);    // L0..L99
  EXPECT_EQ(Vgg416().num_layers(), 417);    // L0..L416
  EXPECT_EQ(ResNet1K().num_layers(), 1030); // L0..L1029
}

TEST(Models, ParameterCounts) {
  EXPECT_NEAR(Billions(Gpt2().total_param_bytes()), 1.56, 0.1);
  EXPECT_NEAR(Billions(Gpt2Medium().total_param_bytes()), 0.37, 0.07);
  EXPECT_NEAR(Billions(BertLarge().total_param_bytes()), 0.34, 0.04);
  EXPECT_NEAR(Billions(Bert96().total_param_bytes()), 1.25, 0.1);
}

TEST(Models, CustomGpt2HitsTargetSizes) {
  for (double billions : {10.0, 20.0, 30.0, 40.0}) {
    const LayerGraph g = Gpt2Custom(billions);
    EXPECT_NEAR(Billions(g.total_param_bytes()), billions, 0.06 * billions)
        << g.model_name;
  }
}

TEST(Models, CnnsHaveDiverseLayers) {
  // The paper stresses that CNNs have much more diverse per-layer
  // characteristics than transformers (Sec 5.1 / Table 1 discussion).
  // Compare the bulk compute layers: conv sizes span orders of magnitude
  // while transformer blocks are identical.
  const auto diversity = [](const LayerGraph& g, LayerKind kind) {
    Bytes mn = -1, mx = 0;
    for (const auto& l : g.layers) {
      if (l.kind != kind || l.param_bytes == 0) continue;
      mn = mn < 0 ? l.param_bytes : std::min(mn, l.param_bytes);
      mx = std::max(mx, l.param_bytes);
    }
    return static_cast<double>(mx) / static_cast<double>(mn);
  };
  EXPECT_GT(diversity(Vgg416(), LayerKind::kConv), 100.0);
  EXPECT_GT(diversity(ResNet1K(), LayerKind::kConv), 100.0);
  EXPECT_DOUBLE_EQ(diversity(Gpt2(), LayerKind::kTransformerBlock), 1.0);
}

TEST(Models, ResNetHasBranches) {
  const LayerGraph g = ResNet1K();
  EXPECT_EQ(g.branches.size(), 342u);  // one skip per bottleneck block
  for (const auto& b : g.branches) {
    EXPECT_LT(b.src + 1, b.dst);
    EXPECT_GT(b.bytes_per_sample, 0);
  }
}

TEST(Sequentialize, RelaysBranchTensors) {
  // Hand-built graph: 5 layers with a branch 0 -> 3 of 100 bytes.
  LayerGraph g;
  g.model_name = "toy";
  for (int i = 0; i < 5; ++i) {
    LayerSpec l;
    l.name = "l" + std::to_string(i);
    l.output_bytes_per_sample = 10;
    l.input_bytes_per_sample = 10;
    g.layers.push_back(l);
  }
  g.branches.push_back(BranchEdge{0, 3, 100});
  const SequentialModel seq = Sequentialize(g);
  // Boundaries (1,2) and (2,3) carry the extra 100 bytes: output side of
  // layers 1 and 2.
  EXPECT_EQ(seq.layers[0].relay_bytes_per_sample, 0);
  EXPECT_EQ(seq.layers[1].relay_bytes_per_sample, 100);
  EXPECT_EQ(seq.layers[2].relay_bytes_per_sample, 100);
  EXPECT_EQ(seq.layers[3].relay_bytes_per_sample, 0);
  EXPECT_EQ(seq.layers[1].boundary_out_bytes(), 110);
}

TEST(Sequentialize, ResNetRelayVolumeBounded) {
  const SequentialModel seq = Sequentialize(ResNet1K());
  Bytes relay = 0, act = 0;
  for (const auto& l : seq.layers) {
    relay += l.relay_bytes_per_sample;
    act += l.spec.output_bytes_per_sample;
  }
  EXPECT_GT(relay, 0);
  EXPECT_LT(relay, 2 * act);  // relaying doubles at most the activation flow
}

TEST(CostModel, TimeIncreasesWithMicrobatch) {
  const CostModel cost(hw::GpuSpec{});
  const LayerSpec block = Gpt2().layers[1];
  TimeSec prev = 0;
  for (int u : {1, 2, 4, 8, 16}) {
    const TimeSec t = cost.FwdTime(block, u);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, BackwardCostsMoreThanForward) {
  const CostModel cost(hw::GpuSpec{});
  for (const auto& layer : Gpt2().layers) {
    EXPECT_GE(cost.BwdTime(layer, 4), cost.FwdTime(layer, 4)) << layer.name;
  }
}

TEST(CostModel, EfficiencyImprovesWithBatching) {
  // Per-sample time shrinks as u grows (arithmetic intensity — the physics
  // behind input-batch grouping).
  const CostModel cost(hw::GpuSpec{});
  const LayerSpec conv = Vgg416().layers[0];
  const double per_sample_1 = cost.FwdTime(conv, 1);
  const double per_sample_16 = cost.FwdTime(conv, 16) / 16.0;
  EXPECT_LT(per_sample_16, per_sample_1);
}

TEST(CostModel, TransformerBlockTimeIsPlausible) {
  // GPT2 block at u=1: ~60 GFLOP at ~40% of 11.34 TFLOP/s => 10-30 ms.
  const CostModel cost(hw::GpuSpec{});
  const TimeSec t = cost.FwdTime(Gpt2().layers[1], 1);
  EXPECT_GT(t, 5e-3);
  EXPECT_LT(t, 50e-3);
}

TEST(Memory, FootprintBreakdownGpt2) {
  const SequentialModel m = Sequentialize(Gpt2());
  const MemoryFootprint f =
      ComputeFootprint(m, /*minibatch=*/8, Optimizer::kAdam, /*recompute=*/false);
  // Weights ~5.8 GiB; gradients equal; Adam state 2x.
  EXPECT_NEAR(static_cast<double>(f.weights) / GiB(1), 5.8, 0.3);
  EXPECT_EQ(f.gradients, f.weights);
  EXPECT_EQ(f.optimizer_state, 2 * f.weights);
  EXPECT_GT(f.activations, f.weights);  // activations dominate at batch 8
  // Total far exceeds a single 11 GB GPU and the 44 GB aggregate (the
  // paper's core premise).
  EXPECT_GT(f.total(), GiB(44));
}

TEST(Memory, RecomputeShrinksActivations) {
  const SequentialModel m = Sequentialize(Bert96());
  const auto full = ComputeFootprint(m, 16, Optimizer::kAdam, false);
  const auto ckpt = ComputeFootprint(m, 16, Optimizer::kAdam, true);
  EXPECT_LT(ckpt.activations, full.activations / 4);
  EXPECT_EQ(ckpt.weights, full.weights);
}

TEST(Memory, FootprintGrowsLinearlyWithBatch) {
  const SequentialModel m = Sequentialize(Gpt2());
  const auto f8 = ComputeFootprint(m, 8, Optimizer::kAdam, false);
  const auto f16 = ComputeFootprint(m, 16, Optimizer::kAdam, false);
  EXPECT_EQ(f16.activations, 2 * f8.activations);
  EXPECT_EQ(f16.weights, f8.weights);
}

TEST(Memory, SgdStateSmallerThanAdam) {
  const SequentialModel m = Sequentialize(Vgg416());
  const auto adam = ComputeFootprint(m, 8, Optimizer::kAdam, false);
  const auto sgd = ComputeFootprint(m, 8, Optimizer::kSgdMomentum, false);
  EXPECT_EQ(sgd.optimizer_state * 2, adam.optimizer_state);
}

}  // namespace
}  // namespace harmony::model
