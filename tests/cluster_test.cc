// Cluster tier tests (DESIGN.md §13): ring placement determinism and the
// rebalance bound virtual nodes buy, disk-store crash-safety (stray tmp
// cleanup, CRC mismatch degrading to a miss, atomic replace), restart-warm
// round trips that must be bit-identical to the original search, peer-fill
// through a real daemon's cache_get handler with single-flight coalescing,
// and TierClient owner routing with failover. Server-level sections boot
// real PlanServers over Unix sockets, the same wiring harmony_serve uses.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/disk_store.h"
#include "cluster/hash_ring.h"
#include "common/json.h"
#include "serve/client.h"
#include "serve/plan_service.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace harmony {
namespace {

namespace fs = std::filesystem;

using cluster::ClusterNode;
using cluster::ClusterOptions;
using cluster::ClusterStats;
using cluster::DiskStore;
using cluster::DiskStoreOptions;
using cluster::HashRing;
using cluster::TierClient;
using serve::ModelSpec;
using serve::PlanRequest;
using serve::PlanResponse;
using serve::PlanServer;
using serve::PlanService;
using serve::ServeClient;
using serve::ServeOptions;
using serve::ServerOptions;

/// A request small enough that its cold search takes milliseconds: these
/// tests exercise the tier, not Algorithm 1.
PlanRequest TinyRequest(int minibatch = 4) {
  PlanRequest request;
  request.model.kind = ModelSpec::Kind::kTransformer;
  request.model.name = "tiny";
  request.model.transformer.name = "tiny";
  request.model.transformer.num_blocks = 4;
  request.model.transformer.hidden = 256;
  request.model.transformer.seq_len = 64;
  request.model.transformer.heads = 4;
  request.model.transformer.vocab = 512;
  request.minibatch = minibatch;
  request.options.u_fwd_max = 4;
  request.options.u_bwd_max = 4;
  return request;
}

std::string SockPath(const std::string& name) {
  return "/tmp/harmony_cluster_" + name + "_" + std::to_string(::getpid()) +
         ".sock";
}

/// A fresh per-test scratch directory, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path("/tmp/harmony_cluster_" + name + "_" +
             std::to_string(::getpid())) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

std::unique_ptr<DiskStore> MustOpen(const std::string& dir,
                                    uint64_t byte_cap = 0) {
  DiskStoreOptions options;
  options.dir = dir;
  options.byte_cap = byte_cap;
  auto store = DiskStore::Open(std::move(options));
  HARMONY_CHECK(store.ok()) << store.status();
  return std::move(store).value();
}

// --- HashRing -------------------------------------------------------------

std::vector<std::string> Members(int n) {
  std::vector<std::string> members;
  for (int i = 0; i < n; ++i) {
    members.push_back("unix:/run/h" + std::to_string(i) + ".sock");
  }
  return members;
}

TEST(HashRing, PlacementIsAPureFunctionOfTheMemberSet) {
  HashRing a, b;
  for (const std::string& m : Members(5)) a.AddNode(m);
  // Insertion order must not matter: add b's members reversed.
  const auto members = Members(5);
  for (auto it = members.rbegin(); it != members.rend(); ++it) b.AddNode(*it);
  for (uint64_t fp = 1; fp <= 10000; ++fp) {
    const uint64_t key = json::Fnv1a("key" + std::to_string(fp));
    ASSERT_EQ(a.OwnerOf(key), b.OwnerOf(key));
  }
}

TEST(HashRing, OwnerIsAlwaysAMember) {
  HashRing ring;
  std::set<std::string> members;
  for (const std::string& m : Members(4)) {
    ring.AddNode(m);
    members.insert(m);
  }
  for (uint64_t fp = 1; fp <= 1000; ++fp) {
    EXPECT_TRUE(members.count(ring.OwnerOf(json::Fnv1a(std::to_string(fp)))));
  }
}

TEST(HashRing, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.OwnerOf(42), "");
  EXPECT_TRUE(ring.RankedNodes(42).empty());
}

TEST(HashRing, RemovalRemapsOnlyTheDepartedMembersKeys) {
  // The consistent-hashing contract: when one of N members leaves, every
  // key owned by a survivor keeps its owner. (The departed member's ~1/N
  // of the space redistributes; nothing else moves.)
  HashRing ring;
  for (const std::string& m : Members(4)) ring.AddNode(m);
  const std::string departed = Members(4)[2];
  std::vector<std::pair<uint64_t, std::string>> before;
  int departed_owned = 0;
  for (uint64_t fp = 1; fp <= 10000; ++fp) {
    const uint64_t key = json::Fnv1a("key" + std::to_string(fp));
    const std::string owner = ring.OwnerOf(key);
    if (owner == departed) ++departed_owned;
    before.emplace_back(key, owner);
  }
  // Sanity: the load is roughly balanced, so the departed member owned a
  // nontrivial share (~2500 of 10000; accept a wide band).
  EXPECT_GT(departed_owned, 1000);
  EXPECT_LT(departed_owned, 5000);

  ring.RemoveNode(departed);
  for (const auto& [key, owner] : before) {
    if (owner == departed) {
      EXPECT_NE(ring.OwnerOf(key), departed);
    } else {
      EXPECT_EQ(ring.OwnerOf(key), owner) << "survivor's key moved";
    }
  }
}

TEST(HashRing, RendezvousFallbackWhenTheRingHasNoPoints) {
  // vnodes_per_node == 0 is degenerate but legal: ownership falls back to
  // rendezvous hashing, which is still deterministic and balanced.
  HashRing a(/*vnodes_per_node=*/0), b(/*vnodes_per_node=*/0);
  for (const std::string& m : Members(3)) {
    a.AddNode(m);
    b.AddNode(m);
  }
  for (uint64_t fp = 1; fp <= 1000; ++fp) {
    const uint64_t key = json::Fnv1a(std::to_string(fp));
    const std::string owner = a.OwnerOf(key);
    EXPECT_EQ(owner, b.OwnerOf(key));
    EXPECT_EQ(owner, a.RankedNodes(key).front());
  }
}

TEST(HashRing, RankedNodesIsADeterministicPermutation) {
  HashRing ring;
  std::set<std::string> members;
  for (const std::string& m : Members(5)) {
    ring.AddNode(m);
    members.insert(m);
  }
  bool saw_distinct_orders = false;
  std::vector<std::string> first;
  for (uint64_t fp = 1; fp <= 100; ++fp) {
    const uint64_t key = json::Fnv1a(std::to_string(fp));
    const std::vector<std::string> ranked = ring.RankedNodes(key);
    ASSERT_EQ(ranked.size(), members.size());
    EXPECT_EQ(std::set<std::string>(ranked.begin(), ranked.end()), members);
    ASSERT_EQ(ranked, ring.RankedNodes(key));  // stable per key
    if (first.empty()) {
      first = ranked;
    } else if (ranked != first) {
      saw_distinct_orders = true;  // different keys rank differently
    }
  }
  EXPECT_TRUE(saw_distinct_orders);
}

// --- DiskStore ------------------------------------------------------------

TEST(DiskStore, PutGetRoundTrip) {
  ScratchDir dir("roundtrip");
  auto store = MustOpen(dir.path);
  const std::string payload = "{\"canonical_request\":\"x\"}";
  ASSERT_TRUE(store->Put(0xabcdefull, payload).ok());
  auto got = store->Get(0xabcdefull);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), payload);
  EXPECT_TRUE(store->Get(0x999).status().code() == StatusCode::kNotFound);
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, payload.size());
}

TEST(DiskStore, ReopenComesBackWarm) {
  ScratchDir dir("reopen");
  {
    auto store = MustOpen(dir.path);
    ASSERT_TRUE(store->Put(0x1111, "plan-one").ok());
    ASSERT_TRUE(store->Put(0x2222, "plan-two").ok());
  }
  auto store = MustOpen(dir.path);
  EXPECT_EQ(store->stats().entries, 2u);
  auto one = store->Get(0x1111);
  auto two = store->Get(0x2222);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_EQ(one.value(), "plan-one");
  EXPECT_EQ(two.value(), "plan-two");
}

TEST(DiskStore, CorruptEntryIsUnlinkedAndDegradesToAMiss) {
  ScratchDir dir("corrupt");
  auto store = MustOpen(dir.path);
  ASSERT_TRUE(store->Put(0xbeef, std::string(64, 'p')).ok());

  // Flip one payload byte on disk; the header CRC must catch it.
  const std::string file = dir.path + "/000000000000beef.plan";
  {
    std::FILE* f = std::fopen(file.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc('q', f);
    std::fclose(f);
  }
  EXPECT_TRUE(store->Get(0xbeef).status().code() == StatusCode::kNotFound);
  EXPECT_EQ(store->stats().corrupt_dropped, 1u);
  EXPECT_EQ(store->stats().entries, 0u);
  EXPECT_FALSE(fs::exists(file)) << "corrupt entry must be unlinked";
}

TEST(DiskStore, StrayTmpFilesAreRemovedOnOpen) {
  ScratchDir dir("straytmp");
  {
    auto store = MustOpen(dir.path);
    ASSERT_TRUE(store->Put(0x42, "surviving-entry").ok());
  }
  // A crash mid-Put leaves `<name>.tmp.<pid>` behind; Open must sweep it
  // and must not index it as an entry.
  const std::string stray = dir.path + "/00000000000000aa.plan.tmp.12345";
  {
    std::FILE* f = std::fopen(stray.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn write", f);
    std::fclose(f);
  }
  auto store = MustOpen(dir.path);
  EXPECT_FALSE(fs::exists(stray));
  EXPECT_EQ(store->stats().entries, 1u);
  EXPECT_EQ(store->Get(0x42).value(), "surviving-entry");
}

TEST(DiskStore, ByteCapEvictsLeastRecentlyUsed) {
  ScratchDir dir("cap");
  auto store = MustOpen(dir.path, /*byte_cap=*/100);
  const std::string forty(40, 'x');
  ASSERT_TRUE(store->Put(1, forty).ok());
  ASSERT_TRUE(store->Put(2, forty).ok());
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(store->Get(1).ok());
  ASSERT_TRUE(store->Put(3, forty).ok());  // 120 bytes > cap: evict 2
  EXPECT_EQ(store->stats().evictions, 1u);
  EXPECT_TRUE(store->Get(2).status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(store->Get(1).ok());
  EXPECT_TRUE(store->Get(3).ok());
  EXPECT_LE(store->stats().bytes, 100u);
}

TEST(DiskStore, OverwriteKeepsOneEntry) {
  ScratchDir dir("overwrite");
  auto store = MustOpen(dir.path);
  ASSERT_TRUE(store->Put(7, "first").ok());
  ASSERT_TRUE(store->Put(7, "second").ok());
  EXPECT_EQ(store->stats().entries, 1u);
  EXPECT_EQ(store->Get(7).value(), "second");
}

// --- restart-warm round trip ---------------------------------------------

TEST(Cluster, RestartWarmServesBitIdenticalPlanWithoutASearch) {
  // First life: a standalone daemon (disk store, no peers) searches once;
  // StoreCompleted persists the plan.
  ScratchDir dir("warm");
  const PlanRequest request = TinyRequest();
  std::string first_config_bytes;
  {
    auto disk = MustOpen(dir.path);
    ClusterOptions copts;
    copts.disk = disk.get();
    ClusterNode node(copts);
    ServeOptions sopts;
    sopts.num_workers = 1;
    sopts.fill = &node;
    PlanService service(sopts);
    node.set_service(&service);
    const PlanResponse cold = service.Plan(request);
    ASSERT_TRUE(cold.status.ok()) << cold.status;
    EXPECT_EQ(cold.filled_from, "");
    first_config_bytes = serve::ConfigurationToJson(cold.config).Dump();
    EXPECT_EQ(service.stats().searches, 1u);
    EXPECT_EQ(disk->stats().puts, 1u);
  }

  // Second life: fresh service, fresh node, reopened directory. The first
  // repeat request must come from disk — zero searches — and the revived
  // configuration must serialize to the exact bytes the search produced.
  auto disk = MustOpen(dir.path);
  ClusterOptions copts;
  copts.disk = disk.get();
  ClusterNode node(copts);
  ServeOptions sopts;
  sopts.num_workers = 1;
  sopts.fill = &node;
  PlanService service(sopts);
  node.set_service(&service);
  const PlanResponse warm = service.Plan(request);
  ASSERT_TRUE(warm.status.ok()) << warm.status;
  EXPECT_EQ(warm.filled_from, "disk");
  EXPECT_EQ(service.stats().searches, 0u);
  EXPECT_EQ(service.stats().filled, 1u);
  EXPECT_EQ(serve::ConfigurationToJson(warm.config).Dump(),
            first_config_bytes);
  EXPECT_EQ(node.stats().disk_hits, 1u);
  // A disk revival must not rewrite its own file.
  EXPECT_EQ(disk->stats().puts, 0u);

  // Third request in the same life: now it's a plain memory cache hit.
  const PlanResponse memory = service.Plan(request);
  EXPECT_TRUE(memory.cache_hit);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

// --- peer-fill through a real daemon -------------------------------------

/// Boots a tier-member daemon: PlanService + ClusterNode wired exactly as
/// harmony_serve wires them (fill source, cache_get extension, stats block).
struct TierDaemon {
  TierDaemon(const std::string& name, std::vector<std::string> members,
             std::string self, DiskStore* disk = nullptr) {
    cluster_options.members = std::move(members);
    cluster_options.self = std::move(self);
    cluster_options.disk = disk;
    node = std::make_unique<ClusterNode>(cluster_options);
    ServeOptions sopts;
    sopts.num_workers = 2;
    sopts.fill = node.get();
    service = std::make_unique<PlanService>(sopts);
    node->set_service(service.get());
    ServerOptions options;
    options.unix_path = SockPath(name);
    path = options.unix_path;
    options.extension = [this](const std::string& type,
                               const json::Value& envelope) {
      return node->HandleEnvelope(type, envelope);
    };
    options.stats_extension = [this]() { return node->StatsJson(); };
    server = std::make_unique<PlanServer>(service.get(), options);
    const Status listening = server->Listen();
    HARMONY_CHECK(listening.ok()) << listening;
    server->Start();
  }
  ~TierDaemon() {
    server->Stop();
    ::unlink(path.c_str());
  }

  ClusterOptions cluster_options;
  std::unique_ptr<ClusterNode> node;
  std::unique_ptr<PlanService> service;
  std::unique_ptr<PlanServer> server;
  std::string path;
};

/// A tiny request whose fingerprint the ring assigns to `owner` — scans
/// minibatch sizes until placement lands there (placement is deterministic,
/// so the scan is too).
PlanRequest RequestOwnedBy(const std::string& owner,
                           const std::vector<std::string>& members) {
  HashRing ring;
  for (const std::string& m : members) ring.AddNode(m);
  for (int mb = 1; mb <= 64; ++mb) {
    const PlanRequest request = TinyRequest(mb);
    if (ring.OwnerOf(serve::RequestFingerprint(request)) == owner) {
      return request;
    }
  }
  HARMONY_CHECK(false) << "no tiny request hashed to " << owner;
  return TinyRequest();
}

TEST(Cluster, PeerFillResolvesAMissWithExactlyOneSearchAcrossTheTier) {
  const std::string owner_ep = "unix:" + SockPath("pf_owner");
  const std::string other_ep = "unix:" + SockPath("pf_other");
  const std::vector<std::string> members = {owner_ep, other_ep};
  TierDaemon owner("pf_owner", members, owner_ep);
  TierDaemon other("pf_other", members, other_ep);

  const PlanRequest request = RequestOwnedBy(owner_ep, members);

  // Warm the owner (the one search the tier will ever run for this key).
  const PlanResponse cold = owner.service->Plan(request);
  ASSERT_TRUE(cold.status.ok()) << cold.status;

  // A miss on the non-owner resolves via cache_get to the owner.
  const PlanResponse filled = other.service->Plan(request);
  ASSERT_TRUE(filled.status.ok()) << filled.status;
  EXPECT_EQ(filled.filled_from, "peer");
  EXPECT_EQ(serve::ConfigurationToJson(filled.config).Dump(),
            serve::ConfigurationToJson(cold.config).Dump());

  // Exactly one search across the tier; the counters prove where the plan
  // traveled: non-owner dialed once and hit, owner answered from memory.
  EXPECT_EQ(owner.service->stats().searches, 1u);
  EXPECT_EQ(other.service->stats().searches, 0u);
  EXPECT_EQ(other.service->stats().filled, 1u);
  const ClusterStats requester = other.node->stats();
  EXPECT_EQ(requester.peer_fill_attempts, 1u);
  EXPECT_EQ(requester.peer_fill_hits, 1u);
  const ClusterStats answerer = owner.node->stats();
  EXPECT_EQ(answerer.cache_get_served_memory, 1u);
  EXPECT_EQ(answerer.cache_get_misses, 0u);
}

TEST(Cluster, TierWideMissFallsBackToOneLocalSearch) {
  const std::string owner_ep = "unix:" + SockPath("miss_owner");
  const std::string other_ep = "unix:" + SockPath("miss_other");
  const std::vector<std::string> members = {owner_ep, other_ep};
  TierDaemon owner("miss_owner", members, owner_ep);
  TierDaemon other("miss_other", members, other_ep);

  // Nothing is warm anywhere: the owner answers "miss" (it must never
  // search on a peer's behalf) and the requester runs the one search.
  const PlanRequest request = RequestOwnedBy(owner_ep, members);
  const PlanResponse response = other.service->Plan(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.filled_from, "");
  EXPECT_EQ(other.service->stats().searches, 1u);
  EXPECT_EQ(owner.service->stats().searches, 0u);
  EXPECT_EQ(owner.node->stats().cache_get_misses, 1u);
  EXPECT_EQ(other.node->stats().peer_fill_misses, 1u);
}

TEST(Cluster, PeerFetchIsSingleFlightPerFingerprint) {
  const std::string owner_ep = "unix:" + SockPath("sf_owner");
  const std::string other_ep = "unix:" + SockPath("sf_other");
  const std::vector<std::string> members = {owner_ep, other_ep};
  TierDaemon owner("sf_owner", members, owner_ep);

  const PlanRequest request = RequestOwnedBy(owner_ep, members);
  ASSERT_TRUE(owner.service->Plan(request).status.ok());

  // A standalone requester node whose peer fetch stalls briefly inside its
  // single-flight slot: four racing TryFills must share ONE round trip.
  ClusterOptions copts;
  copts.members = members;
  copts.self = other_ep;
  copts.stall_peer_fetch_for_test = 0.1;
  ClusterNode node(copts);

  const uint64_t fp = serve::RequestFingerprint(request);
  const std::string canonical = serve::CanonicalRequestJson(request);
  std::vector<std::thread> racers;
  std::vector<std::shared_ptr<const serve::CachedPlan>> plans(4);
  std::vector<std::string> sources(4);
  for (int i = 0; i < 4; ++i) {
    racers.emplace_back([&, i]() {
      plans[i] = node.TryFill(fp, canonical, request, &sources[i]);
    });
  }
  for (std::thread& t : racers) t.join();

  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(plans[i], nullptr) << "racer " << i;
    EXPECT_EQ(sources[i], "peer");
    EXPECT_EQ(plans[i]->canonical_request, canonical);
  }
  const ClusterStats stats = node.stats();
  EXPECT_EQ(stats.peer_fill_attempts, 1u) << "single-flight leaked a dial";
  EXPECT_EQ(stats.peer_fill_coalesced, 3u);
  EXPECT_EQ(stats.peer_fill_hits, 1u);
  EXPECT_EQ(owner.node->stats().cache_get_served_memory, 1u);
}

TEST(Cluster, PeerFillPersistsToTheLocalDiskStore) {
  // A plan fetched from a peer lands in the requester's warm store too, so
  // the *requester's* next restart is warm.
  const std::string owner_ep = "unix:" + SockPath("pd_owner");
  const std::string other_ep = "unix:" + SockPath("pd_other");
  const std::vector<std::string> members = {owner_ep, other_ep};
  ScratchDir dir("peerdisk");
  auto disk = MustOpen(dir.path);
  TierDaemon owner("pd_owner", members, owner_ep);
  TierDaemon other("pd_other", members, other_ep, disk.get());

  const PlanRequest request = RequestOwnedBy(owner_ep, members);
  ASSERT_TRUE(owner.service->Plan(request).status.ok());
  const PlanResponse filled = other.service->Plan(request);
  ASSERT_TRUE(filled.status.ok());
  EXPECT_EQ(filled.filled_from, "peer");
  EXPECT_EQ(disk->stats().puts, 1u);
  auto payload = disk->Get(serve::RequestFingerprint(request));
  ASSERT_TRUE(payload.ok()) << payload.status();
  auto parsed = json::Parse(payload.value());
  ASSERT_TRUE(parsed.ok());
  auto plan = serve::CachedPlanFromJson(parsed.value());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().canonical_request,
            serve::CanonicalRequestJson(request));
}

// --- TierClient -----------------------------------------------------------

TEST(Cluster, TierClientRoutesToTheRingOwner) {
  const std::string a_ep = "unix:" + SockPath("tc_a");
  const std::string b_ep = "unix:" + SockPath("tc_b");
  const std::vector<std::string> members = {a_ep, b_ep};
  TierDaemon a("tc_a", members, a_ep);
  TierDaemon b("tc_b", members, b_ep);

  TierClient tier(members);
  const PlanRequest request = RequestOwnedBy(a_ep, members);
  EXPECT_EQ(tier.OwnerOf(request), a_ep);
  auto response = tier.Plan(request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response.value().status.ok());
  // The owner searched; the other daemon never saw the request.
  EXPECT_EQ(a.service->stats().searches, 1u);
  EXPECT_EQ(b.service->stats().admitted, 0u);
}

TEST(Cluster, TierClientFailsOverPastADeadMember) {
  const std::string dead_ep = "unix:" + SockPath("tc_dead");
  const std::string live_ep = "unix:" + SockPath("tc_live");
  const std::vector<std::string> members = {dead_ep, live_ep};
  TierDaemon live("tc_live", members, live_ep);
  // dead_ep is never booted.

  TierClient tier(members);
  const PlanRequest request = RequestOwnedBy(dead_ep, members);
  auto response = tier.Plan(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response.value().status.ok());
  EXPECT_EQ(live.service->stats().searches, 1u);
}

TEST(Cluster, TierClientReportsTheLastEndpointWhenAllMembersAreDown) {
  const std::vector<std::string> members = {"unix:" + SockPath("down_a"),
                                            "unix:" + SockPath("down_b")};
  TierClient tier(members);
  auto response = tier.Plan(TinyRequest());
  ASSERT_FALSE(response.ok());
  // Satellite (b): transport errors carry errno text and the endpoint.
  EXPECT_NE(response.status().message().find("no tier member answered"),
            std::string::npos)
      << response.status();
  EXPECT_NE(response.status().message().find("unix:"), std::string::npos)
      << response.status();
}

// --- stats plumbing -------------------------------------------------------

TEST(Cluster, StatsEnvelopeCarriesTheClusterBlock) {
  const std::string self_ep = "unix:" + SockPath("stats_self");
  ScratchDir dir("statsdisk");
  auto disk = MustOpen(dir.path);
  TierDaemon daemon("stats_self", {self_ep}, self_ep, disk.get());
  ASSERT_TRUE(daemon.service->Plan(TinyRequest()).status.ok());

  ServeClient probe;
  ASSERT_TRUE(probe.ConnectUnix(daemon.path).ok());
  auto stats = probe.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const json::Value* cluster = stats.value().Find("cluster");
  ASSERT_NE(cluster, nullptr) << "stats envelope lost \"cluster\"";
  std::string self;
  ASSERT_TRUE(json::ReadString(*cluster, "self", &self).ok());
  EXPECT_EQ(self, self_ep);
  const json::Value* disk_block = cluster->Find("disk");
  ASSERT_NE(disk_block, nullptr);
  int64_t puts = -1;
  ASSERT_TRUE(json::ReadInt64(*disk_block, "puts", &puts).ok());
  EXPECT_EQ(puts, 1);
  int64_t filled = -1;
  const json::Value* service = stats.value().Find("service");
  ASSERT_NE(service, nullptr);
  ASSERT_TRUE(json::ReadInt64(*service, "filled", &filled).ok());
  EXPECT_EQ(filled, 0);
}

// --- endpoint parsing -----------------------------------------------------

TEST(Cluster, ParseEndpointAcceptsBothTransportsAndRejectsGarbage) {
  auto u = cluster::ParseEndpoint("unix:/run/h0.sock");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().kind, cluster::Endpoint::Kind::kUnix);
  EXPECT_EQ(u.value().path, "/run/h0.sock");
  auto t = cluster::ParseEndpoint("tcp:127.0.0.1:7077");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().kind, cluster::Endpoint::Kind::kTcp);
  EXPECT_EQ(t.value().host, "127.0.0.1");
  EXPECT_EQ(t.value().port, 7077);
  EXPECT_FALSE(cluster::ParseEndpoint("http://nope").ok());
  EXPECT_FALSE(cluster::ParseEndpoint("tcp:noport").ok());
  EXPECT_FALSE(cluster::ParseEndpoint("").ok());
  auto list = cluster::ParseMemberList("unix:/a.sock,tcp:h:9");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().size(), 2u);
  // Empty elements (trailing commas, shell artifacts) are skipped, not
  // errors; a list with no real members is.
  auto trailing = cluster::ParseMemberList("unix:/a.sock,,unix:/b.sock,");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing.value().size(), 2u);
  EXPECT_FALSE(cluster::ParseMemberList("").ok());
  EXPECT_FALSE(cluster::ParseMemberList(",,").ok());
}

}  // namespace
}  // namespace harmony
