#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/packing.h"
#include "core/scheduler.h"
#include "model/models.h"
#include "profile/profiler.h"
#include "runtime/memory_manager.h"
#include "runtime/runtime.h"

namespace harmony::runtime {
namespace {

using core::Configuration;
using core::HarmonyMode;
using core::OptimizationFlags;
using core::TaskGraph;

// ---------------------------------------------------------------------------
// DeviceMemory unit tests
// ---------------------------------------------------------------------------

TEST(DeviceMemory, AccountingAndPeak) {
  DeviceMemory mem(1000, 4);
  mem.AddResident(0, 400);
  mem.AddResident(1, 300);
  EXPECT_EQ(mem.used(), 700);
  EXPECT_EQ(mem.free_bytes(), 300);
  mem.RemoveResident(0);
  EXPECT_EQ(mem.used(), 300);
  EXPECT_EQ(mem.peak_used(), 700);
  EXPECT_EQ(mem.num_resident(), 1);
}

TEST(DeviceMemory, LruVictimOrder) {
  DeviceMemory mem(1000, 4);
  mem.AddResident(0, 300);
  mem.AddResident(1, 300);
  mem.AddResident(2, 300);
  mem.Touch(0);  // 0 becomes most recently used
  const auto victims = mem.PickVictims(400);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 1);
  EXPECT_EQ(victims[1], 2);
}

TEST(DeviceMemory, PinnedTensorsNotEvicted) {
  DeviceMemory mem(1000, 4);
  mem.AddResident(0, 500);
  mem.AddResident(1, 500);
  mem.Pin(0);
  const auto victims = mem.PickVictims(600);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 1);
  EXPECT_EQ(mem.EvictableBytes(), 500);
  mem.Unpin(0);
  EXPECT_EQ(mem.EvictableBytes(), 1000);
}

TEST(DeviceMemory, NestedPins) {
  DeviceMemory mem(100, 4);
  mem.AddResident(0, 50);
  mem.Pin(0);
  mem.Pin(0);
  mem.Unpin(0);
  EXPECT_TRUE(mem.IsPinned(0));
  mem.Unpin(0);
  EXPECT_FALSE(mem.IsPinned(0));
}

// ---------------------------------------------------------------------------
// Full runtime
// ---------------------------------------------------------------------------

struct Fixture {
  explicit Fixture(int blocks = 16, Bytes gpu_mem = MiB(512))
      : machine(hw::MachineSpec::Commodity4Gpu()),
        model(model::Sequentialize(model::TinyTransformer(blocks, 512, 128))) {
    machine.gpu.memory_capacity = gpu_mem;
    db = std::make_unique<profile::ProfileDb>(
        profile::Profiler(machine.gpu, {}).Profile(model));
  }

  Configuration Config(int u_fwd, int u_bwd, int fwd_min_packs = 4) const {
    core::PackingOptions opts;
    opts.capacity =
        static_cast<Bytes>(machine.gpu.usable_memory() * 0.85);
    Configuration c;
    c.u_fwd = u_fwd;
    c.u_bwd = u_bwd;
    c.bwd_packs = core::BackwardPacks(u_bwd, *db, opts).value();
    opts.min_packs = fwd_min_packs;
    c.fwd_packs = core::ForwardPacks(u_fwd, c.bwd_packs, *db, opts).value();
    return c;
  }

  RunMetrics Run(const TaskGraph& g) const {
    const Runtime rt(machine, model);
    auto result = rt.Execute(g);
    HARMONY_CHECK(result.ok()) << result.status();
    return result.value();
  }

  hw::MachineSpec machine;
  model::SequentialModel model;
  std::unique_ptr<profile::ProfileDb> db;
};

TEST(Runtime, HarmonyPpSwapVolumeNearAnalytic3W) {
  // Section 3's analytical example: Harmony PP swaps ~3|W| per iteration
  // (weights in for fwd and bwd, grads out) plus checkpoint traffic.
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
  const RunMetrics m = f.Run(g);
  const Bytes w = f.model.total_param_bytes();
  EXPECT_GE(m.total_swap(), 2 * w);
  EXPECT_LE(m.total_swap(), 6 * w);
  EXPECT_GT(m.p2p_bytes[1], 0);  // wrap-around pipeline moved activations
}

TEST(Runtime, HarmonyDpSwapVolumeNearAnalytic3NW) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 8, OptimizationFlags{}, *f.db);
  const RunMetrics m = f.Run(g);
  const Bytes w = f.model.total_param_bytes();
  EXPECT_GE(m.total_swap(), 2 * 4 * w);
  EXPECT_LE(m.total_swap(), 6 * 4 * w);
}

TEST(Runtime, PpSwapIsNTimesLowerThanDp) {
  // The core Sec 3 claim: 3N|W| vs 3|W|.
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const auto pp = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db));
  const auto dp = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 8, OptimizationFlags{}, *f.db));
  EXPECT_GT(dp.total_swap(), 2 * pp.total_swap());
}

TEST(Runtime, GroupingOffMultipliesSwaps) {
  // Without input-batch grouping each microbatch re-fetches weights
  // (repeated swaps, Sec 2 inefficiency #1).
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  OptimizationFlags grouped, ungrouped;
  ungrouped.input_batch_grouping = false;
  const auto on = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 32, grouped, *f.db));
  const auto off = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kDataParallel, 4, 32, ungrouped, *f.db));
  EXPECT_GT(off.total_swap(), 2 * on.total_swap());
}

TEST(Runtime, P2pOffRoutesThroughHost) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  OptimizationFlags off;
  off.p2p_transfers = false;
  const auto m = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, off, *f.db));
  for (Bytes b : m.p2p_bytes) EXPECT_EQ(b, 0);
  const auto on = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db));
  EXPECT_GT(m.total_swap(), on.total_swap());
}

TEST(Runtime, SmartEvictionDropsCleanTensors) {
  // Squeeze memory so evictions happen; Harmony's state machine drops clean
  // copies for free while LMS-style eviction always transfers.
  const Fixture f(16, MiB(384));
  const Configuration c = f.Config(1, 1);
  OptimizationFlags smart, lms;
  lms.smart_eviction = false;
  const auto a = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, smart, *f.db));
  const auto b = f.Run(core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, lms, *f.db));
  EXPECT_GE(a.clean_drops, 0);
  EXPECT_GE(b.total_swap(), a.total_swap());
}

TEST(Runtime, EstimatorTracksActualRuntime) {
  // Fig 14: the Scheduler's estimate should be close to the full runtime.
  const Fixture f;
  for (const auto& [uf, ub] : {std::pair{1, 1}, {2, 1}, {2, 2}, {4, 2}}) {
    const Configuration c = f.Config(uf, ub);
    const TaskGraph g = core::GenerateHarmonyTaskGraph(
        c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
    const core::RuntimeEstimator est(*f.db, f.machine);
    const double estimated = est.EstimateIteration(g).iteration_time;
    const double actual = f.Run(g).iteration_time;
    EXPECT_NEAR(estimated, actual, 0.5 * actual)
        << "U_F=" << uf << " U_B=" << ub;
  }
}

TEST(Runtime, OutOfMemoryWhenWorkingSetTooLarge) {
  Fixture f(16, MiB(512));
  // Build packs assuming 512 MiB, then execute on a machine with far less.
  const Configuration c = f.Config(2, 2);
  f.machine.gpu.memory_capacity = MiB(48);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
  const Runtime rt(f.machine, f.model);
  const auto result = rt.Execute(g);
  // A schedule whose packs assume 10x the available memory must fail: as
  // OutOfMemory when the allocator proves the deficit, or as Internal when
  // the starved pipeline wedges first. Either way, never a silent success.
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kOutOfMemory ||
              result.status().code() == StatusCode::kInternal)
      << result.status();
}

TEST(Runtime, HostCapacityEnforced) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
  const Runtime rt(f.machine, f.model);
  RuntimeOptions opts;
  opts.host_static_overhead = f.machine.host_memory;  // leaves no room
  const auto result = rt.Execute(g, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory);
}

TEST(Runtime, ComputeBusyBounded) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
  const RunMetrics m = f.Run(g);
  for (TimeSec busy : m.compute_busy) {
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, m.iteration_time + 1e-9);
  }
  // Some GPU must be busy a significant fraction of the iteration.
  double max_busy = 0;
  for (TimeSec b : m.compute_busy) max_busy = std::max(max_busy, b);
  EXPECT_GT(max_busy, 0.3 * m.iteration_time);
}

TEST(Runtime, PeakDeviceMemoryWithinCapacity) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
  const RunMetrics m = f.Run(g);
  for (Bytes peak : m.peak_device_bytes) {
    EXPECT_LE(peak, f.machine.gpu.usable_memory());
  }
}

TEST(Runtime, SingleGpuWorks) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  hw::MachineSpec one = f.machine.WithNumGpus(1);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 1, 8, OptimizationFlags{}, *f.db);
  const Runtime rt(one, f.model);
  const auto m = rt.Execute(g);
  ASSERT_TRUE(m.ok()) << m.status();
  for (Bytes b : m.value().p2p_bytes) EXPECT_EQ(b, 0);
}

TEST(Runtime, DeterministicAcrossRuns) {
  const Fixture f;
  const Configuration c = f.Config(2, 2);
  const TaskGraph g = core::GenerateHarmonyTaskGraph(
      c, HarmonyMode::kPipelineParallel, 4, 8, OptimizationFlags{}, *f.db);
  const auto a = f.Run(g);
  const auto b = f.Run(g);
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  EXPECT_EQ(a.total_swap(), b.total_swap());
}

// Property sweep: the runtime must complete (no deadlock, no stall) for all
// flag combinations the ablation bench will exercise.
class RuntimeFlagSweep : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeFlagSweep, CompletesForAllFlagCombos) {
  static const Fixture f;
  const int bits = GetParam();
  OptimizationFlags flags;
  flags.input_batch_grouping = bits & 1;
  flags.jit_update = bits & 2;
  flags.jit_compute = bits & 4;
  flags.p2p_transfers = bits & 8;
  flags.prefetch = bits & 16;
  flags.cpu_optimizer = bits & 32;
  const Configuration c = f.Config(2, 2);
  const HarmonyMode mode = (bits & 64) ? HarmonyMode::kDataParallel
                                       : HarmonyMode::kPipelineParallel;
  const TaskGraph g =
      core::GenerateHarmonyTaskGraph(c, mode, 4, 8, flags, *f.db);
  const Runtime rt(f.machine, f.model);
  const auto m = rt.Execute(g);
  ASSERT_TRUE(m.ok()) << m.status() << " bits=" << bits;
  EXPECT_GT(m.value().iteration_time, 0);
}

INSTANTIATE_TEST_SUITE_P(AllFlagCombos, RuntimeFlagSweep,
                         ::testing::Range(0, 128, 1));

}  // namespace
}  // namespace harmony::runtime
