// Golden tests for the StepCompiler — the pure lowering layer of the
// execution pipeline. A StepProgram is a deterministic function of
// (machine, model, graph, optimizer), so these tests pin its structure on
// the paper's BERT96 and GPT2 models without touching the simulator: exact
// per-device step counts, the need/produce keys of representative steps
// (rendered via DebugString), the CPU-offload dependency edges, and the
// cross-cutting invariants every compiled program must satisfy.

#include <gtest/gtest.h>

#include <set>

#include "core/packing.h"
#include "core/task_graph.h"
#include "model/models.h"
#include "profile/profiler.h"
#include "runtime/step_compiler.h"

namespace harmony::runtime {
namespace {

using core::Configuration;
using core::HarmonyMode;
using core::OptimizationFlags;
using core::TaskGraph;

struct Compiled {
  TaskGraph graph;
  StepProgram program;
};

// Mirrors the planner's front door: profile the model, pack at u=4 with 85%
// of usable memory (the same options runtime_test uses), generate the task
// graph, and lower it. No sim::Engine is ever constructed.
Compiled CompileModel(const model::LayerGraph& lg, HarmonyMode mode,
                      int minibatch = 8) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const model::SequentialModel model = model::Sequentialize(lg);
  const profile::ProfileDb db = profile::Profiler(machine.gpu, {}).Profile(model);
  core::PackingOptions opts;
  opts.capacity = static_cast<Bytes>(machine.gpu.usable_memory() * 0.85);
  Configuration c;
  c.u_fwd = c.u_bwd = 4;
  c.bwd_packs = core::BackwardPacks(4, db, opts).value();
  opts.min_packs = 4;
  c.fwd_packs = core::ForwardPacks(4, c.bwd_packs, db, opts).value();
  Compiled out{core::GenerateHarmonyTaskGraph(c, mode, 4, minibatch,
                                              OptimizationFlags{}, db),
               {}};
  StepCompiler compiler(machine, model, out.graph);
  out.program = compiler.Compile();
  return out;
}

const Compiled& Bert96Pp() {
  static const Compiled* c =
      new Compiled(CompileModel(model::Bert96(), HarmonyMode::kPipelineParallel));
  return *c;
}

const Compiled& Gpt2Pp() {
  static const Compiled* c =
      new Compiled(CompileModel(model::Gpt2(), HarmonyMode::kPipelineParallel));
  return *c;
}

// Number of tensors with at least one consumer (the old map-based
// ref_counts only held referenced tensors; the dense vector holds a slot
// per catalog entry).
int NumReferenced(const StepProgram& p) {
  int n = 0;
  for (int refs : p.ref_counts) n += refs > 0;
  return n;
}

// Every StepProgram, regardless of model or mode, must satisfy these.
void CheckInvariants(const Compiled& c) {
  const StepProgram& p = c.program;
  ASSERT_EQ(static_cast<int>(p.task_step_counts.size()), c.graph.num_tasks());
  int64_t counted = 0;
  for (int n : p.task_step_counts) {
    EXPECT_GE(n, 0);
    counted += n;
  }
  EXPECT_EQ(counted, p.num_steps());
  // Dense ref_counts: one slot per interned tensor, never negative.
  ASSERT_EQ(static_cast<int>(p.ref_counts.size()), p.tensors.size());
  for (int refs : p.ref_counts) EXPECT_GE(refs, 0);
  for (const auto& dev : p.steps) {
    for (const Step& s : dev) {
      ASSERT_GE(s.task, 0);
      ASSERT_LT(s.task, c.graph.num_tasks());
      std::set<TensorId> needed;
      for (const NeedSpec& n : s.needs) {
        ASSERT_GE(n.id, 0);
        ASSERT_LT(n.id, p.tensors.size());
        EXPECT_GT(n.bytes, 0) << DebugString(s, p.tensors);
        needed.insert(n.id);
      }
      for (const ProduceSpec& pr : s.produces)
        EXPECT_GT(pr.bytes, 0) << DebugString(s, p.tensors);
      // A step may only consume (deref) tensors it declared as needs.
      for (const TensorId d : s.derefs)
        EXPECT_TRUE(needed.count(d)) << DebugString(s, p.tensors);
    }
  }
  for (const auto& proc : p.cpu_steps) {
    for (const CpuStep& s : proc) {
      ASSERT_GE(s.task, 0);
      ASSERT_LT(s.task, c.graph.num_tasks());
      for (int t : s.wait_tasks) {
        ASSERT_GE(t, 0);
        ASSERT_LT(t, c.graph.num_tasks());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BERT96, pipeline-parallel, 4 GPUs, minibatch 8, u=4/4
// ---------------------------------------------------------------------------

TEST(StepCompiler, Bert96PpGoldenShape) {
  const Compiled& c = Bert96Pp();
  const StepProgram& p = c.program;
  EXPECT_EQ(c.graph.num_tasks(), 10);
  EXPECT_EQ(p.num_steps(), 533);
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].size(), 174u);
  EXPECT_EQ(p.steps[1].size(), 160u);
  EXPECT_EQ(p.steps[2].size(), 164u);
  EXPECT_EQ(p.steps[3].size(), 32u);
  ASSERT_EQ(p.cpu_steps.size(), 4u);
  EXPECT_EQ(p.cpu_steps[0].size(), 1u);
  EXPECT_EQ(p.cpu_steps[1].size(), 1u);
  EXPECT_EQ(p.cpu_steps[2].size(), 1u);
  EXPECT_EQ(p.cpu_steps[3].size(), 0u);
  EXPECT_EQ(NumReferenced(p), 530);
  // Master weights + Adam state (2x) permanently on host.
  EXPECT_EQ(p.static_host_bytes, 14904815640);
}

TEST(StepCompiler, Bert96PpGoldenSteps) {
  const StepProgram& p = Bert96Pp().program;
  // First forward steps on device 0: weights + boundary activation in,
  // next activation out, input consumed.
  EXPECT_EQ(DebugString(p.steps[0][0], p.tensors),
            "t0 needs=[W[L0,o0]:127115264 A[L0,b0,o0]:8192] "
            "produces=[A[L1,b0,o0]:8388608] derefs=[A[L0,b0,o0]]");
  EXPECT_EQ(DebugString(p.steps[0][1], p.tensors),
            "t0 needs=[W[L1,o0]:50384896 A[L1,b0,o0]:8388608] "
            "produces=[A[L2,b0,o0]:8388608] derefs=[A[L1,b0,o0]]");
  EXPECT_EQ(DebugString(p.steps[0][2], p.tensors),
            "t0 needs=[W[L2,o0]:50384896 A[L2,b0,o0]:8388608] "
            "produces=[A[L3,b0,o0]:8388608] derefs=[A[L2,b0,o0]]");
  // Last backward step on device 0: the final microbatch's first layer of
  // the pack pushes the whole pack's gradients to the host (move=...) for
  // the CPU optimizer.
  const Step& last = p.steps[0].back();
  EXPECT_EQ(last.task, 4);
  ASSERT_EQ(last.move_to_host.size(), 34u);
  const std::string rendered = DebugString(last, p.tensors);
  EXPECT_EQ(rendered.substr(0, rendered.find(" move=")),
            "t4 needs=[W[L65,o0]:50384896 G[L65,o0]:50384896 "
            "S[L65,b4,o0]:150994944 dA[L66,b4,o0]:8388608] "
            "produces=[dA[L65,b4,o0]:8388608] "
            "derefs=[S[L65,b4,o0] dA[L66,b4,o0]]");
  // CPU update for that pack: waits on the backward task, needs (and then
  // frees) every pushed gradient's host copy.
  const CpuStep& cpu = p.cpu_steps[0][0];
  EXPECT_EQ(cpu.task, 7);
  EXPECT_EQ(cpu.wait_tasks, std::vector<int>{4});
  ASSERT_EQ(cpu.host_needs.size(), 34u);
  EXPECT_EQ(cpu.host_needs, cpu.host_frees);
  EXPECT_EQ(DebugString(cpu, p.tensors).substr(0, 30), "t7 cpu host_needs=[G[L65,o0] G");
}

TEST(StepCompiler, Bert96PpInvariants) { CheckInvariants(Bert96Pp()); }

// ---------------------------------------------------------------------------
// GPT2 (1.5B), pipeline-parallel, 4 GPUs, minibatch 8, u=4/4
// ---------------------------------------------------------------------------

TEST(StepCompiler, Gpt2PpGoldenShape) {
  const Compiled& c = Gpt2Pp();
  const StepProgram& p = c.program;
  EXPECT_EQ(c.graph.num_tasks(), 16);
  EXPECT_EQ(p.num_steps(), 300);
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].size(), 94u);
  EXPECT_EQ(p.steps[1].size(), 90u);
  EXPECT_EQ(p.steps[2].size(), 56u);
  EXPECT_EQ(p.steps[3].size(), 54u);
  ASSERT_EQ(p.cpu_steps.size(), 4u);
  EXPECT_EQ(p.cpu_steps[0].size(), 2u);
  EXPECT_EQ(p.cpu_steps[1].size(), 2u);
  EXPECT_EQ(p.cpu_steps[2].size(), 1u);
  EXPECT_EQ(p.cpu_steps[3].size(), 1u);
  EXPECT_EQ(NumReferenced(p), 294);
  EXPECT_EQ(p.static_host_bytes, 18691334400);
}

TEST(StepCompiler, Gpt2PpGoldenSteps) {
  const StepProgram& p = Gpt2Pp().program;
  EXPECT_EQ(DebugString(p.steps[0][0], p.tensors),
            "t0 needs=[W[L0,o0]:328198400 A[L0,b0,o0]:16384] "
            "produces=[A[L1,b0,o0]:26214400] derefs=[A[L0,b0,o0]]");
  EXPECT_EQ(DebugString(p.steps[0][1], p.tensors),
            "t0 needs=[W[L1,o0]:122963200 A[L1,b0,o0]:26214400] "
            "produces=[A[L2,b0,o0]:26214400] derefs=[A[L1,b0,o0]]");
  EXPECT_EQ(DebugString(p.steps[0][2], p.tensors),
            "t0 needs=[W[L2,o0]:122963200 A[L2,b0,o0]:26214400] "
            "produces=[A[L3,b0,o0]:26214400] derefs=[A[L2,b0,o0]]");
  const Step& last = p.steps[0].back();
  EXPECT_EQ(last.task, 8);
  EXPECT_EQ(last.move_to_host.size(), 9u);
  const CpuStep& cpu = p.cpu_steps[0][0];
  EXPECT_EQ(cpu.task, 10);
  EXPECT_EQ(cpu.wait_tasks, std::vector<int>{4});
  EXPECT_EQ(cpu.host_needs.size(), 7u);
  EXPECT_EQ(cpu.host_needs, cpu.host_frees);
}

TEST(StepCompiler, Gpt2PpInvariants) { CheckInvariants(Gpt2Pp()); }

// ---------------------------------------------------------------------------
// Cross-cutting: data-parallel lowering and determinism
// ---------------------------------------------------------------------------

TEST(StepCompiler, Bert96DpInvariants) {
  CheckInvariants(CompileModel(model::Bert96(), HarmonyMode::kDataParallel));
}

TEST(StepCompiler, CompileIsDeterministic) {
  const Compiled a = CompileModel(model::Bert96(), HarmonyMode::kPipelineParallel);
  const Compiled b = CompileModel(model::Bert96(), HarmonyMode::kPipelineParallel);
  ASSERT_EQ(a.program.num_steps(), b.program.num_steps());
  ASSERT_EQ(a.program.steps.size(), b.program.steps.size());
  for (size_t d = 0; d < a.program.steps.size(); ++d) {
    ASSERT_EQ(a.program.steps[d].size(), b.program.steps[d].size());
    for (size_t i = 0; i < a.program.steps[d].size(); ++i)
      EXPECT_EQ(DebugString(a.program.steps[d][i], a.program.tensors),
                DebugString(b.program.steps[d][i], b.program.tensors));
  }
  for (size_t d = 0; d < a.program.cpu_steps.size(); ++d)
    for (size_t i = 0; i < a.program.cpu_steps[d].size(); ++i)
      EXPECT_EQ(DebugString(a.program.cpu_steps[d][i], a.program.tensors),
                DebugString(b.program.cpu_steps[d][i], b.program.tensors));
  EXPECT_EQ(a.program.ref_counts, b.program.ref_counts);
  EXPECT_EQ(a.program.static_host_bytes, b.program.static_host_bytes);
}

}  // namespace
}  // namespace harmony::runtime
