#include <gtest/gtest.h>

#include <cmath>

#include "tensor/layers.h"
#include "tensor/optim.h"
#include "tensor/tensor.h"

namespace harmony::tensor {
namespace {

TEST(Tensor, ShapeAndAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  t.at2(1, 2) = 5.0f;
  EXPECT_EQ(t.at(5), 5.0f);
}

TEST(Tensor, MatMulMatchesHand) {
  Tensor a({2, 3}), b({3, 2});
  for (int i = 0; i < 6; ++i) {
    a.at(i) = static_cast<float>(i + 1);      // [[1,2,3],[4,5,6]]
    b.at(i) = static_cast<float>(6 - i);      // [[6,5],[4,3],[2,1]]
  }
  const Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 1 * 6 + 2 * 4 + 3 * 2);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 4 * 5 + 5 * 3 + 6 * 1);
}

TEST(Tensor, TransposedMatMulsAgree) {
  Rng rng(1);
  const Tensor a = Tensor::Randn({4, 5}, &rng, 1.0f);
  const Tensor b = Tensor::Randn({5, 3}, &rng, 1.0f);
  const Tensor ab = MatMul(a, b);
  // a @ b == MatMulBt(a, b^T): build b^T explicitly.
  Tensor bt({3, 5});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) bt.at2(j, i) = b.at2(i, j);
  }
  const Tensor ab2 = MatMulBt(a, bt);
  for (int64_t i = 0; i < ab.size(); ++i) EXPECT_NEAR(ab.at(i), ab2.at(i), 1e-5);
}

TEST(Tensor, BitEquals) {
  Rng rng(2);
  const Tensor a = Tensor::Randn({3, 3}, &rng, 1.0f);
  Tensor b = a;
  EXPECT_TRUE(a.BitEquals(b));
  b.at(4) = std::nextafter(b.at(4), 1e9f);
  EXPECT_FALSE(a.BitEquals(b));
}

TEST(Ops, AddBiasAndScale) {
  Tensor a({2, 2});
  Tensor bias({2});
  bias.at(0) = 1;
  bias.at(1) = 2;
  const Tensor c = AddBias(a, bias);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 1);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 2);
  const Tensor s = Scale(c, 2.0f);
  EXPECT_FLOAT_EQ(s.at2(1, 1), 4);
}

TEST(Gelu, ValueAndDerivative) {
  EXPECT_NEAR(Gelu(0.0f), 0.0f, 1e-7);
  EXPECT_NEAR(Gelu(3.0f), 3.0f, 0.02);   // ~identity for large positive x
  EXPECT_NEAR(Gelu(-5.0f), 0.0f, 0.01);  // ~zero for large negative x
  // Numerical derivative check.
  for (float x : {-2.0f, -0.5f, 0.0f, 0.7f, 2.0f}) {
    const float eps = 1e-3f;
    const float num = (Gelu(x + eps) - Gelu(x - eps)) / (2 * eps);
    EXPECT_NEAR(GeluGrad(x), num, 1e-3) << "x=" << x;
  }
}

TEST(SoftmaxCrossEntropy, UniformLogits) {
  Tensor logits({2, 4});  // all zero -> uniform
  const auto [loss, dlogits] = SoftmaxCrossEntropySum(logits, {1, 3});
  EXPECT_NEAR(loss, 2 * std::log(4.0f), 1e-5);
  EXPECT_NEAR(dlogits.at2(0, 1), 0.25f - 1.0f, 1e-6);
  EXPECT_NEAR(dlogits.at2(0, 0), 0.25f, 1e-6);
}

// ---------------------------------------------------------------------------
// Gradient checking: every layer's analytic backward must match a numerical
// directional derivative of a scalar loss.
// ---------------------------------------------------------------------------

/// L(x) = sum(output) for gradient checking; returns dL/dinputs via backward
/// with dy = ones.
double SumForward(const Layer& layer, const Tensor& x) {
  Stash stash;
  const Tensor y = layer.Forward(x, &stash);
  double sum = 0;
  for (int64_t i = 0; i < y.size(); ++i) sum += y.at(i);
  return sum;
}

void CheckInputGradient(Layer* layer, Tensor x, double tol = 2e-2) {
  Stash stash;
  const Tensor y = layer->Forward(x, &stash);
  Tensor dy(y.shape());
  for (int64_t i = 0; i < dy.size(); ++i) dy.at(i) = 1.0f;
  std::vector<Tensor> grads;
  const Tensor dx = layer->Backward(stash, dy, &grads);

  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t i = static_cast<int64_t>(rng.NextBounded(x.size()));
    const float eps = 1e-2f;
    Tensor xp = x, xm = x;
    xp.at(i) += eps;
    xm.at(i) -= eps;
    const double num = (SumForward(*layer, xp) - SumForward(*layer, xm)) / (2 * eps);
    EXPECT_NEAR(dx.at(i), num, tol * (std::abs(num) + 1.0)) << "input " << i;
  }
}

void CheckParamGradient(Layer* layer, const Tensor& x, double tol = 2e-2) {
  Stash stash;
  const Tensor y = layer->Forward(x, &stash);
  Tensor dy(y.shape());
  for (int64_t i = 0; i < dy.size(); ++i) dy.at(i) = 1.0f;
  std::vector<Tensor> grads;
  layer->Backward(stash, dy, &grads);

  auto params = layer->Params();
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t p = rng.NextBounded(params.size());
    if (params[p]->size() == 0) continue;
    const int64_t i = static_cast<int64_t>(rng.NextBounded(params[p]->size()));
    const float eps = 1e-2f;
    const float saved = params[p]->at(i);
    params[p]->at(i) = saved + eps;
    const double up = SumForward(*layer, x);
    params[p]->at(i) = saved - eps;
    const double down = SumForward(*layer, x);
    params[p]->at(i) = saved;
    const double num = (up - down) / (2 * eps);
    EXPECT_NEAR(grads[p].at(i), num, tol * (std::abs(num) + 1.0))
        << "param " << p << " elem " << i;
  }
}

TEST(GradCheck, MlpBlock) {
  Rng rng(3);
  MlpBlock layer(8, 16, &rng);
  CheckInputGradient(&layer, Tensor::Randn({6, 8}, &rng, 1.0f));
  CheckParamGradient(&layer, Tensor::Randn({6, 8}, &rng, 1.0f));
}

TEST(GradCheck, AttentionBlock) {
  Rng rng(4);
  AttentionBlock layer(8, 2, /*seq=*/4, /*causal=*/false, &rng);
  CheckInputGradient(&layer, Tensor::Randn({8, 8}, &rng, 1.0f));  // B=2, S=4
  CheckParamGradient(&layer, Tensor::Randn({8, 8}, &rng, 1.0f));
}

TEST(GradCheck, CausalAttentionBlock) {
  Rng rng(5);
  AttentionBlock layer(8, 2, /*seq=*/4, /*causal=*/true, &rng);
  CheckInputGradient(&layer, Tensor::Randn({8, 8}, &rng, 1.0f));
  CheckParamGradient(&layer, Tensor::Randn({8, 8}, &rng, 1.0f));
}

TEST(GradCheck, Classifier) {
  Rng rng(6);
  Classifier layer(8, 3, /*seq=*/4, &rng);
  CheckParamGradient(&layer, Tensor::Randn({8, 8}, &rng, 1.0f));
}

TEST(GradCheck, EmbeddingParams) {
  Rng rng(8);
  Embedding layer(10, 8, 4, &rng);
  Tensor tokens({2, 4});
  for (int i = 0; i < 8; ++i) {
    tokens.at(i) = static_cast<float>(rng.NextBounded(10));
  }
  CheckParamGradient(&layer, tokens);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(10);
  const Tensor x = Tensor::Randn({4, 6}, &rng, 1.0f);
  Tensor gamma({6}), beta({6});
  for (int i = 0; i < 6; ++i) gamma.at(i) = 1.0f + 0.1f * i;
  Tensor mean, rstd;
  const Tensor y = LayerNormForward(x, gamma, beta, &mean, &rstd);
  Tensor dy(y.shape());
  for (int64_t i = 0; i < dy.size(); ++i) dy.at(i) = 1.0f;
  Tensor dgamma({6}), dbeta({6});
  const Tensor dx = LayerNormBackward(x, gamma, mean, rstd, dy, &dgamma, &dbeta);
  // Numerical input gradient.
  for (int trial = 0; trial < 6; ++trial) {
    const int64_t i = trial * 3;
    const float eps = 1e-2f;
    Tensor xp = x, xm = x;
    xp.at(i) += eps;
    xm.at(i) -= eps;
    Tensor m2, r2;
    double up = 0, down = 0;
    const Tensor yp = LayerNormForward(xp, gamma, beta, &m2, &r2);
    for (int64_t j = 0; j < yp.size(); ++j) up += yp.at(j);
    const Tensor ym = LayerNormForward(xm, gamma, beta, &m2, &r2);
    for (int64_t j = 0; j < ym.size(); ++j) down += ym.at(j);
    EXPECT_NEAR(dx.at(i), (up - down) / (2 * eps), 2e-2);
  }
}

TEST(Optim, SgdMomentumStep) {
  SgdMomentum opt(0.1f, 0.9f);
  Tensor p({2});
  p.at(0) = 1.0f;
  p.at(1) = -1.0f;
  Tensor g({2});
  g.at(0) = 10.0f;  // grad *sum*; scale 0.1 makes it 1.0
  g.at(1) = 0.0f;
  opt.Step(0, {&p}, {g}, 0.1f);
  EXPECT_NEAR(p.at(0), 1.0f - 0.1f * 1.0f, 1e-6);
  EXPECT_NEAR(p.at(1), -1.0f, 1e-6);
  // Momentum accumulates on repeated steps.
  opt.Step(0, {&p}, {g}, 0.1f);
  EXPECT_NEAR(p.at(0), 0.9f - 0.1f * 1.9f, 1e-6);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  // Minimize (p - 3)^2 with Adam; gradient = 2(p-3).
  Adam opt(0.1f);
  Tensor p({1});
  for (int i = 0; i < 300; ++i) {
    Tensor g({1});
    g.at(0) = 2.0f * (p.at(0) - 3.0f);
    opt.Step(0, {&p}, {g}, 1.0f);
  }
  EXPECT_NEAR(p.at(0), 3.0f, 0.05);
}

TEST(Optim, PerLayerStateIsolation) {
  // Steps on different layer ids keep independent Adam state (timesteps).
  Adam opt(0.1f);
  Tensor p0({1}), p1({1});
  Tensor g({1});
  g.at(0) = 1.0f;
  opt.Step(0, {&p0}, {g}, 1.0f);
  opt.Step(0, {&p0}, {g}, 1.0f);
  opt.Step(1, {&p1}, {g}, 1.0f);
  // First step of layer 1 equals the first step of layer 0 (same state age).
  Adam fresh(0.1f);
  Tensor q({1});
  fresh.Step(7, {&q}, {g}, 1.0f);
  EXPECT_FLOAT_EQ(p1.at(0), q.at(0));
}

}  // namespace
}  // namespace harmony::tensor
