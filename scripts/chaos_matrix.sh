#!/usr/bin/env bash
# Chaos matrix: run the deterministic fault-injection suite across its fixed
# seed x workload grid, then a batch of fresh randomized seeds to probe
# schedules nobody hand-picked. Every randomized run prints its seed on
# failure, so any break replays exactly with
#
#   HARMONY_CHAOS_SEED=<seed> ctest --test-dir <build> -R RandomizedSeed
#
# Usage:
#   chaos_matrix.sh [build-dir] [randomized-rounds] [threads]
#
# Defaults: build-dir=build, randomized-rounds=5, threads=4. The matrix
# fan-out runs on sim::MultiRunDriver with `threads` workers (exported as
# HARMONY_CHAOS_THREADS); results are bit-identical at any worker count, and
# the suite itself asserts parallel-vs-serial parity, so the thread knob only
# trades wall time. Registered in CI as the chaos job; also runnable by hand
# after any runtime/fault change.
set -euo pipefail

BUILD_DIR=${1:-build}
ROUNDS=${2:-5}
THREADS=${3:-4}
export HARMONY_CHAOS_THREADS="$THREADS"

[ -d "$BUILD_DIR" ] || { echo "FAIL: build dir '$BUILD_DIR' not found"; exit 1; }

echo "=== fixed-seed chaos matrix (ctest -L chaos, $THREADS workers) ==="
# Covers: per-fault-kind parity, the seed x {BERT96, GPT2} survivable matrix,
# bit-identical same-seed replay, unsurvivable-fault Status wording, watchdog
# stuck-diagnostics + cancel escalation, and the inert-plan bit-identity.
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure

echo
echo "=== replan matrix (ctest -L replan) ==="
# The degradation-aware loop: {BERT96, GPT2} x {persistent link failure,
# permanent memory shrink} plus the health monitor's hysteresis/synthesis
# units and the bit-identity invariants (plan == Algorithm 1 on the degraded
# descriptor; post-switchover accounting == a fresh run on it; replan off ==
# the plain loop). Fully deterministic — persistent faults draw no RNG — so
# no randomized rounds are needed here. ASan/TSan trees register
# adapt_test_{asan,tsan} under the same label.
ctest --test-dir "$BUILD_DIR" -L replan --output-on-failure

echo
echo "=== randomized seeds ($ROUNDS rounds) ==="
FAILED=0
for round in $(seq "$ROUNDS"); do
  # Draw the seed here (not in the test) so a failing round's replay recipe
  # is visible in this log even if the test binary dies before printing it.
  SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
  echo "--- round $round: HARMONY_CHAOS_SEED=$SEED"
  if ! HARMONY_CHAOS_SEED="$SEED" ctest --test-dir "$BUILD_DIR" \
        -R "ChaosMatrix.RandomizedSeedHoldsTheInvariant" --output-on-failure; then
    echo "FAIL: randomized chaos round $round broke the invariant"
    echo "      replay with: HARMONY_CHAOS_SEED=$SEED ctest --test-dir $BUILD_DIR -R RandomizedSeed"
    FAILED=1
  fi
done

[ "$FAILED" -eq 0 ] || exit 1
echo
echo "PASS: chaos matrix (fixed seeds + $ROUNDS randomized rounds)"
