#!/usr/bin/env bash
# Smoke test for the cluster cache tier (DESIGN.md §13): boot three
# harmony_serve daemons as one tier, then check the three tentpole behaviors
# end to end through real processes and sockets:
#
#   1. owner routing  — a tier-routed plan runs exactly one search, on the
#                       fingerprint's ring owner;
#   2. peer-fill      — a non-owner daemon resolves the same request from
#                       the owner's cache (zero extra searches tier-wide);
#   3. warm restart   — the owner is shut down and rebooted on the same
#                       --cache-dir, and serves the plan from disk without
#                       a search, bit-identical to the original.
#
# Usage:
#
#   cluster_smoke.sh <harmony_serve-binary> <harmony_client-binary>
#
# Registered in CI (and as `ctest -R cluster_smoke`); also runnable by hand.
set -euo pipefail

SERVE_BIN=${1:?usage: cluster_smoke.sh <harmony_serve> <harmony_client>}
CLIENT_BIN=${2:?usage: cluster_smoke.sh <harmony_serve> <harmony_client>}

WORKDIR=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

EP0="unix:$WORKDIR/h0.sock"
EP1="unix:$WORKDIR/h1.sock"
EP2="unix:$WORKDIR/h2.sock"
MEMBERS="$EP0,$EP1,$EP2"

boot() {  # boot <index>
  local i=$1
  mkdir -p "$WORKDIR/cache$i"
  # A drained daemon leaves its socket file behind (the next bind unlinks
  # it); remove it here so the readiness wait below sees the NEW daemon's
  # bind, not the stale file — otherwise a restart can race the client into
  # ECONNREFUSED.
  rm -f "$WORKDIR/h$i.sock"
  "$SERVE_BIN" --unix="$WORKDIR/h$i.sock" --self="unix:$WORKDIR/h$i.sock" \
      --peers="$MEMBERS" --cache-dir="$WORKDIR/cache$i" --workers=1 \
      >>"$WORKDIR/h$i.log" 2>&1 &
  PIDS+=($!)
  for _ in $(seq 50); do
    [ -S "$WORKDIR/h$i.sock" ] && return 0
    sleep 0.1
  done
  echo "FAIL: daemon $i never bound"; cat "$WORKDIR/h$i.log"; exit 1
}

boot 0
boot 1
boot 2

stat_of() {  # stat_of <sock> <python-expr over stats dict d>
  "$CLIENT_BIN" --stats --unix="$1" | python3 -c "
import json, sys
d = json.load(sys.stdin)
print($2)"
}

echo "--- owner routing: tier-routed plan searches exactly once, on the owner"
OUT=$("$CLIENT_BIN" GPT2 pp 64 --peers="$MEMBERS" --json)
echo "$OUT"
python3 - "$OUT" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"] == 1 and r["failed"] == 0, r
assert r["filled_from"] == "", f"cold plan should be a real search: {r}"
EOF
SEARCHES=0
OWNER=""
for i in 0 1 2; do
  S=$(stat_of "$WORKDIR/h$i.sock" "d['service']['searches']")
  SEARCHES=$((SEARCHES + S))
  [ "$S" = "1" ] && OWNER=$i
done
[ "$SEARCHES" = "1" ] || { echo "FAIL: tier ran $SEARCHES searches, wanted 1"; exit 1; }
[ -n "$OWNER" ] || { echo "FAIL: no daemon reports the search"; exit 1; }
echo "owner is daemon $OWNER"

echo "--- peer-fill: a non-owner resolves the same request from the owner"
NONOWNER=$(( (OWNER + 1) % 3 ))
OUT=$("$CLIENT_BIN" GPT2 pp 64 --unix="$WORKDIR/h$NONOWNER.sock" --json)
echo "$OUT"
python3 - "$OUT" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"] == 1 and r["failed"] == 0, r
assert r["filled_from"] == "peer", f"expected a peer fill: {r}"
EOF
FILLED=$(stat_of "$WORKDIR/h$NONOWNER.sock" "d['service']['filled']")
NO_SEARCH=$(stat_of "$WORKDIR/h$NONOWNER.sock" "d['service']['searches']")
PF_HITS=$(stat_of "$WORKDIR/h$NONOWNER.sock" "d['cluster']['peer_fill_hits']")
SERVED=$(stat_of "$WORKDIR/h$OWNER.sock" "d['cluster']['cache_get_served_memory']")
[ "$FILLED" = "1" ] || { echo "FAIL: non-owner filled=$FILLED"; exit 1; }
[ "$NO_SEARCH" = "0" ] || { echo "FAIL: non-owner searched"; exit 1; }
[ "$PF_HITS" = "1" ] || { echo "FAIL: peer_fill_hits=$PF_HITS"; exit 1; }
[ "$SERVED" = "1" ] || { echo "FAIL: owner served $SERVED cache_gets"; exit 1; }
CONFIG_BEFORE=$(python3 - "$OUT" <<'EOF'
import json, sys
print(json.dumps(json.loads(sys.argv[1])["config"], sort_keys=True))
EOF
)

echo "--- warm restart: owner reboots on its cache-dir and serves from disk"
OWNER_PID=${PIDS[$OWNER]}
"$CLIENT_BIN" --shutdown --unix="$WORKDIR/h$OWNER.sock"
wait "$OWNER_PID" || { echo "FAIL: owner exited dirty"; cat "$WORKDIR/h$OWNER.log"; exit 1; }
boot "$OWNER"
OUT=$("$CLIENT_BIN" GPT2 pp 64 --unix="$WORKDIR/h$OWNER.sock" --json)
echo "$OUT"
python3 - "$OUT" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"] == 1 and r["failed"] == 0, r
assert r["filled_from"] == "disk", f"expected a disk revival: {r}"
EOF
RESTART_SEARCHES=$(stat_of "$WORKDIR/h$OWNER.sock" "d['service']['searches']")
DISK_HITS=$(stat_of "$WORKDIR/h$OWNER.sock" "d['cluster']['disk_hits']")
[ "$RESTART_SEARCHES" = "0" ] || { echo "FAIL: restarted owner searched"; exit 1; }
[ "$DISK_HITS" = "1" ] || { echo "FAIL: disk_hits=$DISK_HITS"; exit 1; }
CONFIG_AFTER=$(python3 - "$OUT" <<'EOF'
import json, sys
print(json.dumps(json.loads(sys.argv[1])["config"], sort_keys=True))
EOF
)
[ "$CONFIG_BEFORE" = "$CONFIG_AFTER" ] || {
  echo "FAIL: revived plan differs from the original";
  echo "before: $CONFIG_BEFORE"; echo "after:  $CONFIG_AFTER"; exit 1; }

echo "--- drain the tier"
"$CLIENT_BIN" --shutdown --peers="$MEMBERS"
for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done

echo "PASS: cluster smoke"
