#!/usr/bin/env bash
# Smoke test for the serving daemon: boot harmony_serve on a Unix-domain
# socket, issue a cold plan and warm repeats through harmony_client, verify
# the repeats hit the cache, then drain via --shutdown and check the daemon
# exits cleanly. Usage:
#
#   serve_smoke.sh <harmony_serve-binary> <harmony_client-binary>
#
# Registered in CI (and as `ctest -R serve_smoke`); also runnable by hand.
set -euo pipefail

SERVE_BIN=${1:?usage: serve_smoke.sh <harmony_serve> <harmony_client>}
CLIENT_BIN=${2:?usage: serve_smoke.sh <harmony_serve> <harmony_client>}

WORKDIR=$(mktemp -d)
SOCK="$WORKDIR/harmony.sock"
LOG="$WORKDIR/serve.log"
cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

"$SERVE_BIN" --unix="$SOCK" --workers=2 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the daemon to bind (up to ~5s).
for _ in $(seq 50); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: daemon died at startup"; cat "$LOG"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: socket never appeared"; cat "$LOG"; exit 1; }

echo "--- ping"
"$CLIENT_BIN" --ping --unix="$SOCK"

echo "--- cold plan + warm repeats"
OUT=$("$CLIENT_BIN" BERT96 pp 8 --unix="$SOCK" --repeat=5 --json)
echo "$OUT"
python3 - "$OUT" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"] == 5, f"expected 5 ok responses, got {r['ok']}"
assert r["failed"] == 0, f"unexpected failures: {r['failed']}"
assert r["cache_hits"] >= 4, f"warm repeats missed the cache: {r['cache_hits']}"
EOF

echo "--- stats"
"$CLIENT_BIN" --stats --unix="$SOCK"

echo "--- graceful shutdown"
"$CLIENT_BIN" --shutdown --unix="$SOCK"
wait "$SERVER_PID"
STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "FAIL: daemon exited $STATUS"; cat "$LOG"; exit 1; }
grep -q "drained" "$LOG" || { echo "FAIL: daemon did not report a drain"; cat "$LOG"; exit 1; }

echo "PASS: serve smoke"
