#!/usr/bin/env python3
"""Compare a freshly measured BENCH_*.json against the checked-in baseline.

The repo pins machine-readable perf baselines (BENCH_runtime.json,
BENCH_search.json) recorded by `bench_micro_scheduler --json` and
`bench_search_scaling --json`. This script fails (exit 1) when any metric in
the current measurement regresses more than --tolerance (default 25%) past
its baseline, and reports improvements so stale baselines get re-recorded.

Record formats handled:
  runtime style: {"benchmark": name, "seconds_per_op": s, ...}
  search style:  {"model": m, "threads": t, "search_wall_seconds": s, ...}

Usage:
  check_bench.py --baseline BENCH_runtime.json --current build/BENCH_runtime.json
  check_bench.py --baseline B --current C --tolerance 0.25 -- <cmd to produce C>
  check_bench.py ... --override sim_core_far_future_heavy=0.5 -- <cmd>

When a `--` command is given it is executed first (from the directory of
--current, so benches that write to their CWD land in the right place).

--override KEY=FRAC (repeatable) gives one benchmark a different leash than
the file-wide --tolerance: micro-scale records in a file of otherwise stable
macro benches get a looser bound without loosening the whole gate.

Tight-tolerance gates on shared machines are exposed to multi-second load
bursts that poison every sample in one bench run. --retries N re-measures (and
re-compares) up to N extra times after a regression verdict: a genuine
slowdown fails every attempt, a background burst does not. Only meaningful
together with a `--` command; without one the same file would be re-read.
"""

import argparse
import json
import os
import subprocess
import sys


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    table = {}
    for rec in records:
        if "benchmark" in rec:
            key = rec["benchmark"]
            value = rec["seconds_per_op"]
        elif "model" in rec and "threads" in rec:
            key = "%s@%dT" % (rec["model"], rec["threads"])
            value = rec["search_wall_seconds"]
        else:
            raise ValueError("%s: unrecognized record %r" % (path, rec))
        table[key] = value
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-measure up to N extra times on regression "
                             "(requires a -- command; default 0)")
    parser.add_argument("--override", action="append", default=[],
                        metavar="KEY=FRAC",
                        help="per-benchmark tolerance override (repeatable), "
                             "e.g. --override sim_core_bursty=0.5")
    parser.add_argument("command", nargs="*",
                        help="command run first to produce --current")
    args = parser.parse_args()

    overrides = {}
    for item in args.override:
        key, sep, frac = item.rpartition("=")
        if not sep or not key:
            parser.error("--override expects KEY=FRAC, got %r" % item)
        overrides[key] = float(frac)

    baseline = load_records(args.baseline)
    for key in overrides:
        if key not in baseline:
            parser.error("--override key %r not in baseline %s"
                         % (key, args.baseline))
    retries = args.retries if args.command else 0
    for attempt in range(retries + 1):
        if args.command:
            workdir = os.path.dirname(os.path.abspath(args.current)) or "."
            print("running:", " ".join(args.command), "(in %s)" % workdir)
            proc = subprocess.run(args.command, cwd=workdir)
            if proc.returncode != 0:
                print("FAIL: benchmark command exited %d" % proc.returncode)
                return 1
        failures = compare(baseline, load_records(args.current),
                           args.tolerance, overrides)
        if not failures:
            return 0
        if attempt < retries:
            print("\nretrying (%d/%d): regression may be background load\n"
                  % (attempt + 1, retries))
    return 1


def compare(baseline, current, tolerance, overrides=None):
    overrides = overrides or {}
    failures = []
    improvements = []
    for key, base in sorted(baseline.items()):
        if key not in current:
            failures.append("%s: missing from current measurement" % key)
            continue
        tol = overrides.get(key, tolerance)
        now = current[key]
        ratio = now / base if base > 0 else float("inf")
        line = "%-45s base %.6g  now %.6g  (%.2fx)" % (key, base, now, ratio)
        if key in overrides:
            line += "  [tol %.0f%%]" % (tol * 100)
        if ratio > 1.0 + tol:
            failures.append(line + "  REGRESSION")
        else:
            print("ok   " + line)
            if ratio < 1.0 - tol:
                improvements.append(key)
    for key in sorted(set(current) - set(baseline)):
        print("new  %-45s now %.6g  (no baseline)" % (key, current[key]))

    if improvements:
        print("\n%d metric(s) improved past tolerance — consider re-recording "
              "the baseline: %s" % (len(improvements), ", ".join(improvements)))
    if failures:
        print("\nFAIL: %d metric(s) regressed beyond tolerance "
              "(base %.0f%%):" % (len(failures), tolerance * 100))
        for f in failures:
            print("  " + f)
    else:
        print("\nPASS: %d metric(s) within tolerance (base %.0f%%)"
              % (len(baseline), tolerance * 100))
    return failures


if __name__ == "__main__":
    sys.exit(main())
