// harmony_plan: a command-line planner — the front door a practitioner would
// use. Give it a model, a parallelism mode and a minibatch size; it profiles
// the model, searches the configuration space, prints the chosen schedule,
// and (optionally) executes one iteration on the simulated deployment.
//
//   ./build/examples/harmony_plan GPT2 pp 64
//   ./build/examples/harmony_plan ResNet1K dp 32 --gpus=8 --run
//   ./build/examples/harmony_plan GPT2-20B pp 32 --gpus=8 --run
//   ./build/examples/harmony_plan BERT96 pp 8 --trace-out trace.json
//   ./build/examples/harmony_plan BERT96 pp 8 --replan --link-fail=0@0.05/0.25

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>

#include "adapt/runner.h"
#include "bench/bench_common.h"
#include "common/cancel.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "runtime/runtime.h"
#include "trace/chrome_trace.h"

namespace {

int Usage() {
  std::cerr
      << "usage: harmony_plan <model> <dp|pp> <minibatch> [--gpus=N] [--run]\n"
         "                    [--trace-out <file>] [--deadline-ms=N]\n"
         "                    [--policy=<mode>] [--dump-policy]\n"
         "                    [--replan] [--iterations=N] [--replan-margin=F]\n"
         "                    [--health-window-ms=N]\n"
         "                    [--link-fail=LINK@SEC/FACTOR]\n"
         "                    [--mem-shrink=DEV@SEC/FRACTION]\n"
         "  model: BERT-Large | BERT96 | GPT2 | GPT2-Medium | VGG416 |\n"
         "         ResNet1K | GPT2-<n>B\n"
         "  --policy selects the residency-policy search axis: legacy |\n"
         "  recompute | keep | swap | hybrid | sweep (default legacy).\n"
         "  --dump-policy prints the chosen per-layer {keep,swap,recompute}\n"
         "  table with stash bytes and recompute cost per layer run.\n"
         "  --trace-out writes the executed iteration's timeline as Chrome\n"
         "  trace JSON (load in chrome://tracing or Perfetto); implies --run.\n"
         "  --deadline-ms bounds the whole invocation (search + execution)\n"
         "  with a cooperative cancel token; exceeding it exits with\n"
         "  DeadlineExceeded instead of running open-ended.\n"
         "  --replan drives N training iterations (--iterations, default 4)\n"
         "  through the degradation-aware loop: a health monitor watches the\n"
         "  trace bus and, on sustained degradation, re-plans on the damaged\n"
         "  machine and switches plans at the next iteration boundary when\n"
         "  the candidate beats the old plan by --replan-margin (default\n"
         "  0.03). --health-window-ms sets how long (in simulated time) a\n"
         "  degradation must persist before a re-plan fires.\n"
         "  --link-fail / --mem-shrink arm a persistent degradation, e.g.\n"
         "  --link-fail=0@0.05/0.25 drops link 0 to 25% capacity at t=50ms;\n"
         "  --mem-shrink=1@0.05/0.3 permanently steals 30% of GPU 1.\n";
  return 2;
}

/// Parses the "<id>@<seconds>/<value>" grammar of --link-fail/--mem-shrink.
bool ParseTargetedFault(const char* s, int* id, double* at, double* value) {
  char* end = nullptr;
  *id = static_cast<int>(std::strtol(s, &end, 10));
  if (end == s || *end != '@') return false;
  const char* p = end + 1;
  *at = std::strtod(p, &end);
  if (end == p || *end != '/') return false;
  p = end + 1;
  *value = std::strtod(p, &end);
  return end != p && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harmony;
  if (argc < 4) return Usage();
  const std::string model_name = argv[1];
  const std::string mode_str = argv[2];
  const int minibatch = std::atoi(argv[3]);
  int gpus = 4;
  bool run = false;
  bool dump_policy = false;
  int deadline_ms = 0;
  bool replan = false;
  int iterations = 4;
  double replan_margin = 0.03;
  int health_window_ms = 0;
  fault::FaultPlan fault_plan;
  std::string trace_out;
  core::PolicyMode policy_mode = core::PolicyMode::kLegacy;
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gpus=", 7) == 0) {
      gpus = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::atoi(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--replan") == 0) {
      replan = true;
    } else if (std::strncmp(argv[i], "--iterations=", 13) == 0) {
      iterations = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--replan-margin=", 16) == 0) {
      replan_margin = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--health-window-ms=", 19) == 0) {
      health_window_ms = std::atoi(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--link-fail=", 12) == 0) {
      int link;
      double at, factor;
      if (!ParseTargetedFault(argv[i] + 12, &link, &at, &factor)) {
        return Usage();
      }
      fault_plan.enabled = true;
      fault_plan.link_fail_link = link;
      fault_plan.link_fail_at = at;
      fault_plan.link_fail_factor = factor;
    } else if (std::strncmp(argv[i], "--mem-shrink=", 13) == 0) {
      int dev;
      double at, frac;
      if (!ParseTargetedFault(argv[i] + 13, &dev, &at, &frac)) {
        return Usage();
      }
      fault_plan.enabled = true;
      fault_plan.mem_shrink_device = dev;
      fault_plan.mem_shrink_at = at;
      fault_plan.mem_shrink_fraction = frac;
    } else if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      const auto pm = core::PolicyModeFromName(argv[i] + 9);
      if (!pm.ok()) {
        std::cerr << pm.status() << "\n";
        return Usage();
      }
      policy_mode = pm.value();
    } else if (std::strcmp(argv[i], "--dump-policy") == 0) {
      dump_policy = true;
    } else if (std::strcmp(argv[i], "--run") == 0) {
      run = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
      run = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
      run = true;
    } else {
      return Usage();
    }
  }
  if (trace_out.empty() && std::getenv("HARMONY_TRACE_OUT") != nullptr) {
    trace_out = std::getenv("HARMONY_TRACE_OUT");
    run = true;
  }
  if (minibatch < 1 || (mode_str != "dp" && mode_str != "pp")) return Usage();
  const auto mode = mode_str == "pp" ? core::HarmonyMode::kPipelineParallel
                                     : core::HarmonyMode::kDataParallel;
  const hw::MachineSpec machine =
      (gpus > 4 ? hw::MachineSpec::Commodity8Gpu()
                : hw::MachineSpec::Commodity4Gpu())
          .WithNumGpus(gpus);

  if (replan) {
    const auto spec = serve::ModelSpec::FromName(model_name);
    if (!spec.ok()) {
      std::cerr << spec.status() << "\n";
      return Usage();
    }
    adapt::AdaptOptions ao;
    ao.iterations = std::max(1, iterations);
    ao.replan_margin = replan_margin;
    ao.health_window_seconds = health_window_ms / 1000.0;
    ao.fault_plan = fault_plan;
    trace::ChromeTraceSink chrome;
    if (!trace_out.empty()) ao.trace_sinks.push_back(&chrome);
    core::SearchOptions so;
    so.policy_mode = policy_mode;
    adapt::AdaptiveRunner runner(machine, spec.value(), mode, minibatch, {},
                                 so, ao);
    std::cout << "Adaptive loop: " << ao.iterations << " iterations, margin "
              << replan_margin << ", " << (fault_plan.Any()
                                               ? fault_plan.Describe()
                                               : std::string("no faults"))
              << "\n";
    const auto result = runner.Run();
    if (!result.ok()) {
      std::cerr << "adaptive run failed: " << result.status() << "\n";
      return 1;
    }
    const auto& ar = result.value();
    for (size_t i = 0; i < ar.iterations.size(); ++i) {
      std::cout << "  iteration " << i << ": "
                << FormatTime(ar.iterations[i].iteration_time) << ", swap "
                << FormatBytes(ar.iterations[i].total_swap())
                << (ar.switched && static_cast<int>(i) >= ar.switch_iteration
                        ? "  [new plan]"
                        : "")
                << "\n";
    }
    for (const auto& d : ar.decisions) {
      std::cout << "  replan @ iteration " << d.iteration << ": "
                << (d.applied ? "applied" : "rejected") << " (" << d.reason
                << ")";
      if (d.old_estimate_seconds > 0) {
        std::cout << ", old est " << FormatTime(d.old_estimate_seconds)
                  << " -> new est " << FormatTime(d.new_estimate_seconds)
                  << " via " << d.planner;
      }
      if (d.applied) {
        std::cout << ", switchover evict "
                  << FormatBytes(d.orphan_evict_bytes) << " + prefetch "
                  << FormatBytes(d.prefetch_bytes) << " ("
                  << FormatTime(d.switchover_seconds) << ")";
      }
      std::cout << "\n";
    }
    if (ar.decisions.empty()) {
      std::cout << "  no re-plan triggered\n";
    }
    std::cout << "  final configuration " << ar.config.ToString() << " on "
              << ar.machine.gpu.name << " x" << ar.machine.num_gpus << "\n";
    if (!trace_out.empty()) {
      const Status st = chrome.WriteFile(trace_out);
      if (!st.ok()) {
        std::cerr << "trace write failed: " << st << "\n";
        return 1;
      }
      std::cout << "  wrote " << chrome.num_events() << " trace events to "
                << trace_out << "\n";
    }
    return 0;
  }

  const bench::PreparedModel pm = bench::Prepare(model_name, machine);
  std::cout << "Model " << pm.name << ": " << pm.model.num_layers()
            << " layers, " << FormatBytes(pm.model.total_param_bytes())
            << " of weights\n"
            << "Deployment: " << gpus << "x " << machine.gpu.name << " ("
            << FormatBytes(machine.gpu.memory_capacity) << " each), "
            << FormatBytes(machine.host_memory) << " host\n\n";

  common::CancelToken cancel;
  if (deadline_ms > 0) {
    cancel.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
  }
  core::SearchOptions so;
  so.policy_mode = policy_mode;
  if (deadline_ms > 0) so.cancel = &cancel;
  const auto found = core::SearchConfiguration(pm.profiles, machine, mode,
                                               minibatch, {}, so);
  if (!found.ok()) {
    std::cerr << "no feasible schedule: " << found.status() << "\n";
    return 1;
  }
  const auto& r = found.value();
  std::cout << core::HarmonyModeName(mode) << " configuration "
            << r.best.ToString() << "  (searched " << r.configs_explored
            << " configs in " << Table::Cell(r.search_wall_seconds) << "s)\n"
            << "  P_F: " << core::PackListToString(r.best.fwd_packs) << "\n"
            << "  P_B: " << core::PackListToString(r.best.bwd_packs) << "\n"
            << "  estimated iteration: "
            << FormatTime(r.best_estimate.iteration_time) << ", swap "
            << FormatBytes(r.best_estimate.swap_bytes) << ", p2p "
            << FormatBytes(r.best_estimate.p2p_bytes) << "\n";

  if (dump_policy) {
    const int R = pm.profiles.num_layers();
    core::PolicyTable pol = r.best.policy;
    if (pol.empty()) {
      pol = core::PolicyTable::Legacy(R, core::OptimizationFlags{}.use_recompute);
    }
    std::cout << "\nResidency policy (" << (r.best.policy.empty() ? "legacy"
                                                                  : "searched")
              << ", table " << (pol.ToString().empty() ? "-" : pol.ToString())
              << "), per layer run at U_B=" << r.best.u_bwd << ":\n";
    std::cout << "  layers      policy     stash        recompute\n";
    for (int lo = 0; lo < R;) {
      int hi = lo;
      while (hi + 1 < R && pol.at(hi + 1) == pol.at(lo)) ++hi;
      Bytes stash = 0;
      TimeSec rematerialize = 0;
      for (int l = lo; l <= hi; ++l) {
        stash += static_cast<Bytes>(r.best.u_bwd) *
                 pm.profiles.layer(l).stash_bytes_per_sample;
        rematerialize += pm.profiles.FwdTime(l, r.best.u_bwd);
      }
      std::string range = "L";
      range += std::to_string(lo);
      range += '-';
      range += std::to_string(hi);
      range.resize(std::max<size_t>(range.size() + 2, 12), ' ');
      std::string policy = model::StashPolicyName(pol.at(lo));
      policy.resize(11, ' ');
      std::cout << "  " << range << policy << FormatBytes(stash) << "  "
                << FormatTime(rematerialize) << "\n";
      lo = hi + 1;
    }
  }

  // Show the wrap-around binding of the final task graph.
  const auto graph = core::GenerateHarmonyTaskGraph(
      r.best, mode, machine.num_gpus, minibatch, {}, pm.profiles);
  std::cout << "\nTask graph (" << graph.num_tasks() << " tasks):\n";
  for (const auto& t : graph.tasks) {
    if (t.id >= 24) {
      std::cout << "  ... (" << graph.num_tasks() - t.id << " more)\n";
      break;
    }
    std::cout << "  task " << t.id << ": " << core::TaskTypeName(t.type)
              << " L" << t.pack.lo << "-" << t.pack.hi << " -> "
              << (t.on_cpu ? "CPU#" : "GPU#") << t.device
              << (t.fused_forward ? "  (jit-compute fused)" : "") << "\n";
  }

  if (!run) return 0;
  std::cout << "\nExecuting one iteration on the simulated deployment...\n";
  const runtime::Runtime rt(machine, pm.model);
  runtime::RuntimeOptions ro;
  ro.optimizer = pm.optimizer;
  if (deadline_ms > 0) ro.cancel = &cancel;
  trace::ChromeTraceSink chrome;
  if (!trace_out.empty()) ro.trace_sinks.push_back(&chrome);
  const auto metrics = rt.Execute(graph, ro);
  if (!metrics.ok()) {
    std::cerr << "execution failed: " << metrics.status() << "\n";
    return 1;
  }
  if (!trace_out.empty()) {
    const Status st = chrome.WriteFile(trace_out);
    if (!st.ok()) {
      std::cerr << "trace write failed: " << st << "\n";
      return 1;
    }
    std::cout << "  wrote " << chrome.num_events() << " trace events to "
              << trace_out << " (chrome://tracing)\n";
  }
  const auto& mm = metrics.value();
  std::cout << "  iteration " << FormatTime(mm.iteration_time) << " ("
            << Table::Cell(mm.Throughput(minibatch)) << " samples/s), swap "
            << FormatBytes(mm.total_swap()) << ", estimator error "
            << Table::Cell(100.0 * (r.best_estimate.iteration_time -
                                    mm.iteration_time) /
                               mm.iteration_time,
                           1)
            << "%\n";
  return 0;
}
