// Compare parallel-training schedules on one model: the per-GPU-swap
// baselines (DP / GPipe / PipeDream-2BW, each + LMS-style virtualization)
// against Harmony DP and the wrap-around pipeline (Harmony PP). A compact,
// runnable slice of the paper's Figure 9/10 comparison.
//
// Build & run:  ./build/examples/compare_schedules [model] [minibatch]
//   model in {BERT-Large, BERT96, GPT2, GPT2-Medium, VGG416, ResNet1K}

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace harmony;
  const std::string model = argc > 1 ? argv[1] : "GPT2";
  const int minibatch = argc > 2 ? std::atoi(argv[2]) : 32;

  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const bench::PreparedModel pm = bench::Prepare(model, machine);
  std::cout << "Model " << model << " ("
            << FormatBytes(pm.model.total_param_bytes())
            << " weights), minibatch " << minibatch << ", "
            << machine.name << "\n\n";

  Table t({"scheme", "iteration (s)", "samples/s", "global swap (GiB)",
           "worst-GPU swap (GiB)", "p2p (GiB)"});
  for (auto scheme :
       {bench::Scheme::kDpSwap, bench::Scheme::kGpSwap, bench::Scheme::kGpSwapR,
        bench::Scheme::k2bwSwap, bench::Scheme::k2bwSwapR,
        bench::Scheme::kZeroInfinity, bench::Scheme::kHarmonyDp,
        bench::Scheme::kHarmonyPp}) {
    const bench::SchemeResult r =
        bench::RunScheme(scheme, pm, machine, minibatch);
    if (!r.ok) {
      t.AddRow({r.scheme, r.error, "-", "-", "-", "-"});
      continue;
    }
    Bytes p2p = 0;
    for (Bytes b : r.metrics.p2p_bytes) p2p += b;
    t.AddRow({r.scheme, Table::Cell(r.iteration_time),
              Table::Cell(r.throughput),
              Table::Cell(static_cast<double>(r.metrics.total_swap()) / GiB(1), 1),
              Table::Cell(static_cast<double>(r.metrics.max_device_swap()) / GiB(1), 1),
              Table::Cell(static_cast<double>(p2p) / GiB(1), 1)});
  }
  t.PrintAscii(&std::cout);
  return 0;
}
