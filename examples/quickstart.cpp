// Quickstart: schedule and "run" one training iteration of a large model
// with Harmony on a simulated commodity 4-GPU server.
//
//   1. Pick a model whose training footprint exceeds all GPU memory combined.
//   2. Let the Scheduler profile it, search the configuration space
//      (Algorithm 1) and emit a wrap-around pipeline task graph.
//   3. Execute the graph on the Runtime and inspect throughput + swap load.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/scheduler.h"
#include "model/memory.h"
#include "model/models.h"
#include "runtime/runtime.h"

int main() {
  using namespace harmony;

  // The deployment: four 11 GB GTX-1080Ti GPUs behind a PCIe tree.
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  std::cout << "Machine: " << machine.name << "\n";

  // The workload: GPT-2 (1.5B parameters). Training it with Adam needs
  // weights + gradients + optimizer state + activations -- far more than the
  // 44 GB the four GPUs offer together.
  const model::SequentialModel m = model::Sequentialize(model::Gpt2());
  const auto footprint =
      model::ComputeFootprint(m, /*minibatch=*/32, model::Optimizer::kAdam,
                              /*recompute=*/false);
  std::cout << "Model: " << m.model_name << " ("
            << FormatBytes(m.total_param_bytes()) << " of weights)\n"
            << "Training footprint at minibatch 32: "
            << FormatBytes(footprint.total()) << " vs "
            << FormatBytes(4 * machine.gpu.memory_capacity)
            << " of total GPU memory\n\n";

  // Schedule: profile -> configuration search -> task graph (Fig 3).
  const core::Scheduler scheduler(machine);
  const auto outcome =
      scheduler.Schedule(m, core::HarmonyMode::kPipelineParallel,
                         /*minibatch=*/32);
  if (!outcome.ok()) {
    std::cerr << "scheduling failed: " << outcome.status() << "\n";
    return 1;
  }
  const auto& best = outcome.value().search.best;
  std::cout << "Best configuration " << best.ToString() << " found in "
            << outcome.value().search.search_wall_seconds << "s ("
            << outcome.value().search.configs_explored << " configs)\n";
  std::cout << "  P_F: " << core::PackListToString(best.fwd_packs) << "\n";
  std::cout << "  P_B: " << core::PackListToString(best.bwd_packs) << "\n\n";

  // Execute one iteration on the simulated deployment.
  const runtime::Runtime rt(machine, m);
  const auto metrics = rt.Execute(outcome.value().graph);
  if (!metrics.ok()) {
    std::cerr << "execution failed: " << metrics.status() << "\n";
    return 1;
  }
  const auto& mm = metrics.value();
  std::cout << "Iteration time: " << FormatTime(mm.iteration_time) << "  ("
            << mm.Throughput(32) << " samples/s)\n";
  std::cout << "Swap load:      " << FormatBytes(mm.total_swap())
            << " total, worst GPU " << FormatBytes(mm.max_device_swap()) << "\n";
  std::cout << "p2p traffic:    ";
  Bytes p2p = 0;
  for (Bytes b : mm.p2p_bytes) p2p += b;
  std::cout << FormatBytes(p2p) << "\n";
  std::cout << "Peak host use:  " << FormatBytes(mm.peak_host_bytes) << "\n";
  return 0;
}
