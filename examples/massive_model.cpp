// Training a 40-billion-parameter GPT-2 variant at the limit of host memory
// (the Sec 5.7 scenario): on an 8-GPU commodity server, Harmony schedules
// and executes a model whose optimizer state alone dwarfs all GPU memory,
// while a ZeRO-Infinity-style baseline exhausts host RAM.
//
// Build & run:  cmake --build build && ./build/examples/massive_model

#include <iostream>

#include "baselines/baselines.h"
#include "core/scheduler.h"
#include "model/memory.h"
#include "model/models.h"
#include "runtime/runtime.h"

int main() {
  using namespace harmony;
  const hw::MachineSpec machine = hw::MachineSpec::Commodity8Gpu();
  const model::SequentialModel m =
      model::Sequentialize(model::Gpt2Custom(40.0));
  const int minibatch = 32;

  std::cout << "Model: " << m.model_name << " — "
            << FormatBytes(m.total_param_bytes()) << " of weights; with Adam "
            << "state and gradients the master copy alone is "
            << FormatBytes(4 * m.total_param_bytes()) << "\n";
  std::cout << "Machine: " << machine.name << " ("
            << FormatBytes(machine.host_memory) << " host memory)\n\n";

  const core::Scheduler scheduler(machine);
  core::SearchOptions search;
  search.u_fwd_max = 8;
  search.u_bwd_max = 8;

  for (auto mode : {core::HarmonyMode::kPipelineParallel,
                    core::HarmonyMode::kDataParallel}) {
    const auto outcome = scheduler.Schedule(m, mode, minibatch,
                                            core::OptimizationFlags{}, search);
    if (!outcome.ok()) {
      std::cout << HarmonyModeName(mode) << ": " << outcome.status() << "\n";
      continue;
    }
    const runtime::Runtime rt(machine, m);
    const auto metrics = rt.Execute(outcome.value().graph);
    if (!metrics.ok()) {
      std::cout << HarmonyModeName(mode) << ": " << metrics.status() << "\n";
      continue;
    }
    std::cout << HarmonyModeName(mode) << ": config "
              << outcome.value().search.best.ToString() << "\n  "
              << metrics.value().Throughput(minibatch) << " samples/s, swap "
              << FormatBytes(metrics.value().total_swap()) << ", peak host "
              << FormatBytes(metrics.value().peak_host_bytes) << "\n";
  }

  // The ZeRO-Infinity-style baseline needs pinned staging buffers on top of
  // the master state — which no longer fits.
  {
    const profile::Profiler profiler(machine.gpu, {});
    const profile::ProfileDb db = profiler.Profile(m);
    const auto dp = scheduler.Schedule(m, core::HarmonyMode::kDataParallel,
                                       minibatch, {}, search);
    if (dp.ok()) {
      const auto g = baselines::ZeroInfinity(db, dp.value().search.best,
                                             machine.num_gpus, minibatch);
      runtime::RuntimeOptions ro;
      ro.host_static_overhead = baselines::ZeroInfinityHostOverhead(m);
      const runtime::Runtime rt(machine, m);
      const auto metrics = rt.Execute(g, ro);
      std::cout << "ZeRO-Infinity: "
                << (metrics.ok() ? "trained (unexpected!)"
                                 : metrics.status().ToString())
                << "\n";
    }
  }
  return 0;
}
