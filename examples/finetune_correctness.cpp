// Fine-tuning correctness demo (the Sec 5.4 experiment, runnable):
// train a real (small) transformer with actual FP32 arithmetic under five
// execution schemes — vanilla baseline, Harmony's reordered execution
// (input-batch grouping + layer packs + recomputation + jit updates), the
// wrap-around pipeline order, and the two data-parallel variants — and show
// that per-minibatch losses match bit-for-bit where the paper says they do.
//
// Build & run:  cmake --build build && ./build/examples/finetune_correctness

#include <cstdio>
#include <iostream>

#include "tensor/train.h"

int main() {
  using namespace harmony;
  using tensor::ExecutionScheme;

  tensor::TinyModelConfig model;
  model.blocks = 3;  // Embedding + 3x(Attention, MLP) + Classifier = 8 layers

  tensor::TrainOptions opts;
  opts.iterations = 15;
  opts.minibatch = 16;
  opts.microbatch = 4;      // U_B: gradient-accumulation granularity
  opts.fwd_microbatch = 8;  // U_F != U_B, like a real Harmony configuration
  opts.packs = {core::Pack{0, 2}, core::Pack{3, 5}, core::Pack{6, 7}};

  std::cout << "Training an 8-layer transformer under five execution schemes\n"
            << "(minibatch 16, U_F=8, U_B=4, packs {0-2, 3-5, 6-7})\n\n";

  const ExecutionScheme schemes[] = {
      ExecutionScheme::kBaseline1Gpu, ExecutionScheme::kHarmony1Gpu,
      ExecutionScheme::kHarmonyPp, ExecutionScheme::kBaselineDp,
      ExecutionScheme::kHarmonyDp};
  std::vector<tensor::TrainResult> results;
  for (auto s : schemes) results.push_back(Train(model, s, opts));

  std::printf("%-5s %-14s %-14s %-14s %-14s %-14s\n", "iter", "baseline",
              "harmony", "harmony-pp", "baseline-dp", "harmony-dp");
  for (int i = 0; i < opts.iterations; ++i) {
    std::printf("%-5d", i);
    for (const auto& r : results) std::printf(" %.9f ", r.losses[i]);
    std::printf("\n");
  }

  const bool exact_1gpu = results[0].losses == results[1].losses &&
                          results[0].losses == results[2].losses;
  const bool exact_dp = results[3].losses == results[4].losses;
  std::cout << "\nHarmony / Harmony PP match the baseline bit-for-bit: "
            << (exact_1gpu ? "yes" : "NO — BUG") << "\n";
  std::cout << "Harmony DP matches baseline DP bit-for-bit:          "
            << (exact_dp ? "yes" : "NO — BUG") << "\n";
  std::cout << "(The DP pair differs from the 1-GPU runs in the last digits,\n"
            << " because reduction changes float summation nesting — the same\n"
            << " effect behind Table 3's 88.0% vs 87.3% columns.)\n";
  return exact_1gpu && exact_dp ? 0 : 1;
}
