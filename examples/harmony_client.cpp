// harmony_client: CLI client and closed-loop load generator for
// harmony_serve. One-shot planning looks like harmony_plan, except the
// search runs in the daemon (and repeat requests hit its plan cache):
//
//   ./build/examples/harmony_client GPT2 pp 64 --unix=/tmp/harmony.sock
//
// As a load generator, each client thread opens its own connection and
// issues requests back-to-back, reporting throughput and client-observed
// latency percentiles. By default daemon rejections under backpressure are
// counted, not retried — the point is to observe the admission policy;
// --retries=N instead rides them out with jittered backoff (honoring the
// server's retry-after hint), the way a production caller would:
//
//   ./build/examples/harmony_client GPT2 pp 64 --unix=/tmp/h.sock
//       --repeat=100 --threads=8 --json
//
// Control verbs: --ping (liveness), --stats (daemon counters), --shutdown
// (graceful drain).
//
// Against a cache tier (DESIGN.md §13), --peers=<ep>,<ep>,... replaces
// --unix/--tcp: each request is routed to its fingerprint's ring owner, the
// same placement the daemons use, so a tier-wide working set shards across
// the members with no coordination:
//
//   ./build/examples/harmony_client GPT2 pp 64
//       --peers=unix:/run/h0.sock,unix:/run/h1.sock,unix:/run/h2.sock

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "serve/client.h"

namespace {

int Usage() {
  std::cerr
      << "usage: harmony_client <model> <dp|pp> <minibatch>\n"
         "                      (--unix=<path> | --tcp=<port> |\n"
         "                       --peers=<ep>,<ep>,...) [--host=<ip>]\n"
         "                      [--gpus=N] [--repeat=N] [--threads=N]\n"
         "                      [--deadline-ms=N] [--retries=N] [--run]\n"
         "                      [--bypass-cache] [--json]\n"
         "   or: harmony_client (--ping | --stats | --shutdown)\n"
         "                      (--unix=<path> | --tcp=<port>) [--host=<ip>]\n"
         "   or: harmony_client (--stats | --shutdown) --peers=<ep>,...\n"
         "  --peers  owner-route each request across a cache tier; endpoints\n"
         "           are unix:<path> or tcp:<host>:<port>, spelled exactly as\n"
         "           the daemons' --peers list\n"
         "  model: BERT-Large | BERT96 | GPT2 | GPT2-Medium | VGG416 |\n"
         "         ResNet1K | GPT2-<n>B\n";
  return 2;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harmony;
  using Clock = std::chrono::steady_clock;

  std::string unix_path, host = "127.0.0.1", peers_csv;
  int tcp_port = -1;
  std::string model_name, mode_str;
  int minibatch = 0, gpus = 4, repeat = 1, threads = 1, deadline_ms = 0;
  int retries = 0;
  bool run = false, bypass_cache = false, as_json = false;
  bool do_ping = false, do_stats = false, do_shutdown = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      unix_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--tcp=", 6) == 0) {
      tcp_port = std::atoi(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--peers=", 8) == 0) {
      peers_csv = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--gpus=", 7) == 0) {
      gpus = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--run") == 0) {
      run = true;
    } else if (std::strcmp(argv[i], "--bypass-cache") == 0) {
      bypass_cache = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      do_ping = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      do_stats = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      do_shutdown = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (positional == 0) {
      model_name = argv[i];
      ++positional;
    } else if (positional == 1) {
      mode_str = argv[i];
      ++positional;
    } else if (positional == 2) {
      minibatch = std::atoi(argv[i]);
      ++positional;
    } else {
      return Usage();
    }
  }
  if (unix_path.empty() && tcp_port < 0 && peers_csv.empty()) return Usage();
  if (!peers_csv.empty() && (!unix_path.empty() || tcp_port >= 0)) {
    std::cerr << "harmony_client: --peers replaces --unix/--tcp\n";
    return Usage();
  }

  std::vector<std::string> members;
  if (!peers_csv.empty()) {
    auto parsed = cluster::ParseMemberList(peers_csv);
    if (!parsed.ok()) {
      std::cerr << "harmony_client: " << parsed.status() << "\n";
      return 1;
    }
    members = std::move(parsed).value();
  }

  auto connect = [&](serve::ServeClient* client) {
    return unix_path.empty() ? client->ConnectTcp(host, tcp_port)
                             : client->ConnectUnix(unix_path);
  };

  if (!members.empty() && (do_ping || do_stats || do_shutdown)) {
    cluster::TierClient tier(members);
    if (do_ping || do_stats) {
      for (const std::string& member : members) {
        auto stats = tier.StatsFrom(member);
        if (!stats.ok()) {
          std::cerr << member << ": " << stats.status() << "\n";
          continue;
        }
        std::cout << member << " " << stats.value().Dump() << "\n";
      }
    }
    if (do_shutdown) {
      const int reached = tier.ShutdownAll();
      std::cout << reached << "/" << members.size() << " members draining\n";
      return reached == static_cast<int>(members.size()) ? 0 : 1;
    }
    return 0;
  }

  if (do_ping || do_stats || do_shutdown) {
    serve::ServeClient client;
    const Status st = connect(&client);
    if (!st.ok()) {
      std::cerr << "connect failed: " << st << "\n";
      return 1;
    }
    if (do_ping) {
      const Status pong = client.Ping();
      if (!pong.ok()) {
        std::cerr << "ping failed: " << pong << "\n";
        return 1;
      }
      std::cout << "pong\n";
    }
    if (do_stats) {
      const auto stats = client.Stats();
      if (!stats.ok()) {
        std::cerr << "stats failed: " << stats.status() << "\n";
        return 1;
      }
      std::cout << stats.value().Dump() << "\n";
    }
    if (do_shutdown) {
      const Status bye = client.Shutdown();
      if (!bye.ok()) {
        std::cerr << "shutdown failed: " << bye << "\n";
        return 1;
      }
      std::cout << "daemon draining\n";
    }
    return 0;
  }

  if (positional != 3 || minibatch < 1 ||
      (mode_str != "dp" && mode_str != "pp") || repeat < 1 || threads < 1) {
    return Usage();
  }

  auto spec = serve::ModelSpec::FromName(model_name);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return Usage();
  }
  serve::PlanRequest request;
  request.model = spec.value();
  request.machine = (gpus > 4 ? hw::MachineSpec::Commodity8Gpu()
                              : hw::MachineSpec::Commodity4Gpu())
                        .WithNumGpus(gpus);
  request.mode = mode_str == "pp" ? core::HarmonyMode::kPipelineParallel
                                  : core::HarmonyMode::kDataParallel;
  request.minibatch = minibatch;
  request.run_iteration = run;
  request.deadline_ms = deadline_ms;
  request.bypass_cache = bypass_cache;

  // Closed loop: each thread owns a connection and keeps exactly one request
  // outstanding, so offered concurrency == --threads.
  std::mutex mu;
  std::vector<double> latencies;  // seconds, client-observed
  int ok_count = 0, cache_hits = 0, rejected = 0, failed = 0;
  int64_t retries_used = 0;
  serve::PlanResponse sample;  // one successful response, for display

  const auto bench_start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      // Tier mode owns its connections inside TierClient (one per member);
      // point mode dials the single daemon up front. Tier routing already
      // fails over past dead members, so --retries applies to point mode
      // only (where a restart would otherwise drop the whole thread).
      std::unique_ptr<cluster::TierClient> tier;
      serve::ServeClient client;
      if (!members.empty()) {
        tier = std::make_unique<cluster::TierClient>(members);
      } else {
        const Status st = connect(&client);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          failed += repeat;
          return;
        }
      }
      serve::ServeClient::RetryOptions retry;
      retry.max_retries = retries;
      retry.seed = 0x636c69656e740000ull + static_cast<uint64_t>(t);
      for (int i = 0; i < repeat; ++i) {
        const auto start = Clock::now();
        auto response = tier != nullptr ? tier->Plan(request)
                        : retries > 0  ? client.PlanWithRetry(request, retry)
                                       : client.Plan(request);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        std::lock_guard<std::mutex> lock(mu);
        if (!response.ok()) {
          ++failed;
          continue;
        }
        const serve::PlanResponse& r = response.value();
        if (r.status.ok()) {
          ++ok_count;
          latencies.push_back(seconds);
          if (r.cache_hit) ++cache_hits;
          if (!sample.status.ok() || sample.fingerprint == 0) sample = r;
        } else if (r.status.code() == StatusCode::kResourceExhausted) {
          ++rejected;
        } else {
          ++failed;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      retries_used += client.retries();
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - bench_start).count();

  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double rps = wall > 0 ? static_cast<double>(ok_count) / wall : 0;

  if (as_json) {
    json::Value out = json::Value::Object();
    out.Set("model", model_name);
    out.Set("mode", mode_str);
    out.Set("minibatch", minibatch);
    out.Set("threads", threads);
    out.Set("repeat", repeat);
    out.Set("ok", ok_count);
    out.Set("cache_hits", cache_hits);
    out.Set("rejected", rejected);
    out.Set("failed", failed);
    out.Set("retries", retries_used);
    out.Set("wall_seconds", wall);
    out.Set("requests_per_second", rps);
    out.Set("p50_seconds", p50);
    out.Set("p99_seconds", p99);
    if (ok_count > 0) {
      out.Set("fingerprint", json::FingerprintHex(sample.fingerprint));
      out.Set("filled_from", sample.filled_from);
      out.Set("config", serve::ConfigurationToJson(sample.config));
    }
    std::cout << out.Dump() << "\n";
    return failed > 0 ? 1 : 0;
  }

  if (ok_count > 0) {
    std::cout << "configuration " << sample.config.ToString() << "  ["
              << json::FingerprintHex(sample.fingerprint) << "]\n"
              << "  P_F: " << core::PackListToString(sample.config.fwd_packs)
              << "\n"
              << "  P_B: " << core::PackListToString(sample.config.bwd_packs)
              << "\n"
              << "  estimated iteration: " << sample.estimate.iteration_time
              << "s (searched " << sample.configs_explored << " configs in "
              << sample.search_seconds << "s)\n";
    if (sample.has_metrics) {
      std::cout << "  executed iteration: " << sample.metrics.iteration_time
                << "s\n";
    }
  }
  std::cout << ok_count << " ok (" << cache_hits << " cache hits), "
            << rejected << " rejected, " << failed << " failed, "
            << retries_used << " retries in " << wall << "s  (" << rps
            << " req/s, p50 " << p50 * 1e3 << " ms, p99 " << p99 * 1e3
            << " ms)\n";
  return failed > 0 ? 1 : 0;
}
