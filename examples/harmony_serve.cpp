// harmony_serve: the plan-as-a-service daemon. Listens on a Unix-domain or
// loopback TCP socket, answers length-prefixed JSON planning requests, and
// fronts Algorithm 1 with the sharded content-addressed plan cache — repeat
// requests for the same (model, machine, search knobs) are answered from the
// cache in microseconds instead of re-running the search.
//
//   ./build/examples/harmony_serve --unix=/tmp/harmony.sock
//   ./build/examples/harmony_serve --tcp=7077 --workers=4 --cache-mb=128
//
// Stop it with SIGINT/SIGTERM or a client's --shutdown; both drain in-flight
// searches before exiting.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.h"

namespace {

std::atomic<bool> g_interrupted{false};

void OnSignal(int) { g_interrupted.store(true); }

int Usage() {
  std::cerr
      << "usage: harmony_serve (--unix=<path> | --tcp=<port>)\n"
         "                     [--workers=N] [--cache-mb=N] [--max-pending=N]\n"
         "                     [--loop-threads=N] [--idle-timeout-ms=N]\n"
         "  --unix        listen on a Unix-domain socket at <path>\n"
         "  --tcp         listen on loopback TCP <port> (0 picks a free port)\n"
         "  --workers     search worker threads (default 2)\n"
         "  --cache-mb    plan cache budget in MiB (default 64; 0 disables)\n"
         "  --max-pending admission bound before load-shedding (default 64)\n"
         "  --loop-threads    reactor event-loop threads (default 1)\n"
         "  --idle-timeout-ms reap connections idle this long (default\n"
         "                    300000; 0 disables)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harmony;
  serve::ServeOptions service_options;
  serve::ServerOptions server_options;
  // The daemon (unlike embedded/test servers) defaults the idle reaper on:
  // a long-running service should not let forgotten clients pin fds forever.
  server_options.idle_timeout_ms = 300000;
  bool have_endpoint = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      server_options.unix_path = argv[i] + 7;
      have_endpoint = true;
    } else if (std::strncmp(argv[i], "--tcp=", 6) == 0) {
      server_options.use_tcp = true;
      server_options.tcp_port = std::atoi(argv[i] + 6);
      have_endpoint = true;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      service_options.num_workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache-mb=", 11) == 0) {
      const long mb = std::atol(argv[i] + 11);
      service_options.enable_cache = mb > 0;
      service_options.cache_bytes = static_cast<size_t>(mb) << 20;
    } else if (std::strncmp(argv[i], "--max-pending=", 14) == 0) {
      service_options.max_pending = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--loop-threads=", 15) == 0) {
      server_options.loop_threads = std::atoi(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--idle-timeout-ms=", 18) == 0) {
      server_options.idle_timeout_ms = std::atoi(argv[i] + 18);
    } else {
      return Usage();
    }
  }
  if (!have_endpoint) return Usage();

  serve::PlanService service(service_options);
  serve::PlanServer server(&service, server_options);
  const Status listening = server.Listen();
  if (!listening.ok()) {
    std::cerr << "listen failed: " << listening << "\n";
    return 1;
  }

  // The socket layer already sends with MSG_NOSIGNAL, but ignore SIGPIPE
  // process-wide as well: a client vanishing mid-response must never take
  // the daemon down with it.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  server.Start();
  if (!server_options.unix_path.empty()) {
    std::cout << "harmony_serve: listening on " << server_options.unix_path
              << std::endl;
  } else {
    std::cout << "harmony_serve: listening on 127.0.0.1:"
              << server.bound_port() << std::endl;
  }

  // The reactor loops run on their own threads; this thread only watches for
  // a signal or a client-initiated shutdown request, then performs the stop
  // itself (a loop thread cannot join its own teardown).
  while (!g_interrupted.load() && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const serve::ServiceStats stats = service.stats();
  const serve::CacheStats cache = service.cache_stats();
  std::cout << "harmony_serve: drained. " << stats.completed
            << " responses (" << stats.cache_hits << " cache hits, "
            << stats.searches << " searches, " << stats.rejected
            << " rejected); cache " << cache.entries << " entries / "
            << cache.bytes << " bytes, " << cache.evictions << " evictions\n";
  return 0;
}
