// harmony_serve: the plan-as-a-service daemon. Listens on a Unix-domain or
// loopback TCP socket, answers length-prefixed JSON planning requests, and
// fronts Algorithm 1 with the sharded content-addressed plan cache — repeat
// requests for the same (model, machine, search knobs) are answered from the
// cache in microseconds instead of re-running the search.
//
//   ./build/examples/harmony_serve --unix=/tmp/harmony.sock
//   ./build/examples/harmony_serve --tcp=7077 --workers=4 --cache-mb=128
//
// N daemons form a cooperative cache tier (DESIGN.md §13) when given the
// member list and their own endpoint; --cache-dir adds the disk-backed warm
// store so a restart comes back warm:
//
//   ./build/examples/harmony_serve --unix=/run/h0.sock
//       --self=unix:/run/h0.sock
//       --peers=unix:/run/h0.sock,unix:/run/h1.sock,unix:/run/h2.sock
//       --cache-dir=/var/cache/harmony/h0
//
// Stop it with SIGINT/SIGTERM or a client's --shutdown; both drain in-flight
// searches before exiting.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "serve/server.h"

namespace {

std::atomic<bool> g_interrupted{false};

void OnSignal(int) { g_interrupted.store(true); }

int Usage() {
  std::cerr
      << "usage: harmony_serve (--unix=<path> | --tcp=<port>)\n"
         "                     [--workers=N] [--cache-mb=N] [--max-pending=N]\n"
         "                     [--loop-threads=N] [--idle-timeout-ms=N]\n"
         "                     [--self=<ep> --peers=<ep>,<ep>,...]\n"
         "                     [--cache-dir=<dir>] [--disk-cap-mb=N]\n"
         "  --unix        listen on a Unix-domain socket at <path>\n"
         "  --tcp         listen on loopback TCP <port> (0 picks a free port)\n"
         "  --workers     search worker threads (default 2)\n"
         "  --cache-mb    plan cache budget in MiB (default 64; 0 disables)\n"
         "  --max-pending admission bound before load-shedding (default 64)\n"
         "  --loop-threads    reactor event-loop threads (default 1)\n"
         "  --idle-timeout-ms reap connections idle this long (default\n"
         "                    300000; 0 disables)\n"
         "  --self        this daemon's tier endpoint (unix:<path> or\n"
         "                tcp:<host>:<port>); requires --peers\n"
         "  --peers       every tier member (including self), comma-separated;\n"
         "                the list must be spelled identically tier-wide\n"
         "  --cache-dir   disk-backed warm store directory (restart-warm)\n"
         "  --disk-cap-mb warm store byte cap in MiB (default 256; 0 = none)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harmony;
  serve::ServeOptions service_options;
  serve::ServerOptions server_options;
  cluster::ClusterOptions cluster_options;
  // The daemon (unlike embedded/test servers) defaults the idle reaper on:
  // a long-running service should not let forgotten clients pin fds forever.
  server_options.idle_timeout_ms = 300000;
  std::string peers_csv, cache_dir;
  long disk_cap_mb = 256;
  bool have_endpoint = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      server_options.unix_path = argv[i] + 7;
      have_endpoint = true;
    } else if (std::strncmp(argv[i], "--tcp=", 6) == 0) {
      server_options.use_tcp = true;
      server_options.tcp_port = std::atoi(argv[i] + 6);
      have_endpoint = true;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      service_options.num_workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache-mb=", 11) == 0) {
      const long mb = std::atol(argv[i] + 11);
      service_options.enable_cache = mb > 0;
      service_options.cache_bytes = static_cast<size_t>(mb) << 20;
    } else if (std::strncmp(argv[i], "--max-pending=", 14) == 0) {
      service_options.max_pending = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--loop-threads=", 15) == 0) {
      server_options.loop_threads = std::atoi(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--idle-timeout-ms=", 18) == 0) {
      server_options.idle_timeout_ms = std::atoi(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--self=", 7) == 0) {
      cluster_options.self = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--peers=", 8) == 0) {
      peers_csv = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      cache_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--disk-cap-mb=", 14) == 0) {
      disk_cap_mb = std::atol(argv[i] + 14);
    } else {
      return Usage();
    }
  }
  if (!have_endpoint) return Usage();
  if (!peers_csv.empty() != !cluster_options.self.empty()) {
    std::cerr << "harmony_serve: --self and --peers go together\n";
    return Usage();
  }

  // Cluster tier membership (optional): a disk store alone makes a
  // restart-warm standalone daemon; peers add owner routing and peer-fill.
  std::unique_ptr<cluster::DiskStore> disk;
  if (!cache_dir.empty()) {
    cluster::DiskStoreOptions disk_options;
    disk_options.dir = cache_dir;
    disk_options.byte_cap = disk_cap_mb > 0
                                ? static_cast<uint64_t>(disk_cap_mb) << 20
                                : 0;
    auto opened = cluster::DiskStore::Open(std::move(disk_options));
    if (!opened.ok()) {
      std::cerr << "harmony_serve: " << opened.status() << "\n";
      return 1;
    }
    disk = std::move(opened).value();
  }
  std::unique_ptr<cluster::ClusterNode> node;
  if (!peers_csv.empty() || disk != nullptr) {
    if (!peers_csv.empty()) {
      auto members = cluster::ParseMemberList(peers_csv);
      if (!members.ok()) {
        std::cerr << "harmony_serve: " << members.status() << "\n";
        return 1;
      }
      cluster_options.members = std::move(members).value();
    }
    cluster_options.disk = disk.get();
    node = std::make_unique<cluster::ClusterNode>(cluster_options);
    service_options.fill = node.get();
  }

  serve::PlanService service(service_options);
  if (node != nullptr) {
    node->set_service(&service);
    server_options.extension = [&node](const std::string& type,
                                       const json::Value& envelope) {
      return node->HandleEnvelope(type, envelope);
    };
    server_options.stats_extension = [&node]() { return node->StatsJson(); };
  }
  serve::PlanServer server(&service, server_options);
  const Status listening = server.Listen();
  if (!listening.ok()) {
    std::cerr << "listen failed: " << listening << "\n";
    return 1;
  }

  // The socket layer already sends with MSG_NOSIGNAL, but ignore SIGPIPE
  // process-wide as well: a client vanishing mid-response must never take
  // the daemon down with it.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  server.Start();
  if (!server_options.unix_path.empty()) {
    std::cout << "harmony_serve: listening on " << server_options.unix_path
              << std::endl;
  } else {
    std::cout << "harmony_serve: listening on 127.0.0.1:"
              << server.bound_port() << std::endl;
  }
  if (node != nullptr && !cluster_options.members.empty()) {
    std::cout << "harmony_serve: tier member " << cluster_options.self
              << " of " << cluster_options.members.size() << std::endl;
  }

  // The reactor loops run on their own threads; this thread only watches for
  // a signal or a client-initiated shutdown request, then performs the stop
  // itself (a loop thread cannot join its own teardown).
  while (!g_interrupted.load() && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const serve::ServiceStats stats = service.stats();
  const serve::CacheStats cache = service.cache_stats();
  std::cout << "harmony_serve: drained. " << stats.completed
            << " responses (" << stats.cache_hits << " cache hits, "
            << stats.filled << " tier fills, " << stats.searches
            << " searches, " << stats.rejected
            << " rejected); cache " << cache.entries << " entries / "
            << cache.bytes << " bytes, " << cache.evictions << " evictions\n";
  if (node != nullptr) {
    const cluster::ClusterStats cs = node->stats();
    std::cout << "harmony_serve: tier peer-fill " << cs.peer_fill_hits << "/"
              << cs.peer_fill_attempts << " hits, disk " << cs.disk_hits
              << " hits / " << cs.disk_misses << " misses, served peers "
              << (cs.cache_get_served_memory + cs.cache_get_served_disk)
              << "\n";
  }
  return 0;
}
