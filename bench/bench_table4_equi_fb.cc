// Reproduces Table 4: Equi-FB (one configuration shared by forward and
// backward) vs Distinct-FB (Harmony's full four-tuple search), minibatch 16.
// Iteration times are measured on deployed (simulated) training runs.

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Equi-FB vs Distinct-FB configuration search, minibatch 16",
              "Table 4");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();

  Table t({"Model", "Equi-FB (s)", "Distinct-FB (s)", "Improvement"});
  for (const std::string name : {"BERT96", "GPT2", "VGG416", "ResNet1K"}) {
    const PreparedModel pm = Prepare(name, machine);
    const runtime::Runtime rt(machine, pm.model);
    runtime::RuntimeOptions ro;
    ro.optimizer = pm.optimizer;

    auto measure = [&](bool equi) -> double {
      core::SearchOptions opts;
      opts.u_fwd_max = 16;
      opts.u_bwd_max = 16;
      opts.equi_fb = equi;
      const auto found = core::SearchConfiguration(
          pm.profiles, machine, core::HarmonyMode::kPipelineParallel, 16,
          core::OptimizationFlags{}, opts);
      if (!found.ok()) return -1;
      const core::TaskGraph g = core::GenerateHarmonyTaskGraph(
          found.value().best, core::HarmonyMode::kPipelineParallel,
          machine.num_gpus, 16, core::OptimizationFlags{}, pm.profiles);
      const auto m = rt.Execute(g, ro);
      return m.ok() ? m.value().iteration_time : -1;
    };

    const double equi = measure(true);
    const double distinct = measure(false);
    if (equi < 0 || distinct < 0) {
      t.AddRow({name, "failed", "failed", "-"});
      continue;
    }
    t.AddRow({name, Table::Cell(equi, 3), Table::Cell(distinct, 3),
              Table::Cell(100.0 * (equi - distinct) / equi, 1) + "%"});
  }
  t.PrintAscii(&std::cout);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
