// Validates the analytical swap-volume example of Section 3: for a uniform
// model where each GPU can hold roughly one layer's task at a time, weight
// swap volume per iteration is ~(4m+2)N|W| for DP with per-GPU swapping,
// ~3N|W| for Harmony DP and ~3|W| for Harmony PP.

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/packing.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Analytical swap-volume comparison on a uniform model",
              "Section 3 (Figure 5's intuition)");
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  machine.gpu.memory_capacity = GiB(1);
  const PreparedModel pm = Prepare("GPT2-Medium", machine);
  // GPT2-Medium on a 1 GiB GPU: one transformer block's task saturates the
  // device, the regime of the paper's toy example.
  const int minibatch = 32;
  const int n = machine.num_gpus;
  const Bytes w = pm.model.total_param_bytes();

  // Harmony configs at U = 2: m = minibatch / (N * U) microbatches per GPU.
  core::PackingOptions popts;
  popts.capacity = static_cast<Bytes>(machine.gpu.usable_memory() * 0.85);
  core::Configuration config;
  config.u_fwd = config.u_bwd = 2;
  config.bwd_packs = core::BackwardPacks(2, pm.profiles, popts).value();
  config.fwd_packs =
      core::ForwardPacks(2, config.bwd_packs, pm.profiles, popts).value();
  const int m = minibatch / (n * 2);

  Table t({"scheme", "measured swap (GiB)", "in units of |W|",
           "analytic model", "analytic (GiB)"});
  auto add = [&](const std::string& name, const runtime::RunMetrics& mm,
                 const std::string& formula, double analytic_w) {
    t.AddRow({name,
              Table::Cell(static_cast<double>(mm.total_swap()) / GiB(1), 1),
              Table::Cell(static_cast<double>(mm.total_swap()) / w, 1), formula,
              Table::Cell(analytic_w * w / GiB(1), 1)});
  };

  const runtime::Runtime rt(machine, pm.model);
  runtime::RuntimeOptions ro;
  ro.optimizer = pm.optimizer;

  {
    const int u = 2;
    const auto g = baselines::DpSwap(pm.profiles, n, minibatch, u);
    const auto mm = rt.Execute(g, ro);
    if (mm.ok()) {
      // The (4m+2)N|W| weight term; activation/stash traffic comes on top.
      add("DP Swap", mm.value(), "(4m+2)N|W| + stash",
          (4.0 * (minibatch / n / u) + 2.0) * n);
    }
  }
  {
    const auto g = core::GenerateHarmonyTaskGraph(
        config, core::HarmonyMode::kDataParallel, n, minibatch,
        core::OptimizationFlags{}, pm.profiles);
    const auto mm = rt.Execute(g, ro);
    if (mm.ok()) add("Harmony DP", mm.value(), "3N|W| + ckpt", 3.0 * n);
  }
  {
    const auto g = core::GenerateHarmonyTaskGraph(
        config, core::HarmonyMode::kPipelineParallel, n, minibatch,
        core::OptimizationFlags{}, pm.profiles);
    const auto mm = rt.Execute(g, ro);
    if (mm.ok()) add("Harmony PP", mm.value(), "3|W| + ckpt", 3.0);
  }
  std::cout << "|W| = " << FormatBytes(w) << ", N = " << n << ", m = " << m
            << " microbatches per GPU\n";
  t.PrintAscii(&std::cout);
  std::cout << "\nThe measured volumes include activation/checkpoint traffic\n"
               "on top of the weight-only analytical terms, so they upper-\n"
               "bound the formulas; the relative ordering (and the ~N and ~m\n"
               "factors between schemes) is the reproduced claim.\n";
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
