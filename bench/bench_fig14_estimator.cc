// Reproduces Figure 14: accuracy of Harmony's Runtime Estimator — estimated
// vs actual iteration time for a random sample of the configurations the
// search explores (BERT-Large, minibatch 600, 4 GPUs, Harmony PP).

#include <iostream>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Runtime Estimator accuracy (BERT-Large, minibatch 600, "
              "Harmony PP, 4 GPUs)",
              "Figure 14");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const PreparedModel pm = Prepare("BERT-Large", machine);

  core::SearchOptions opts;
  opts.u_fwd_max = 32;
  opts.u_bwd_max = 32;
  // Fig 14 samples from the full explored set; the search drops it by
  // default since only this experiment needs every candidate's packs.
  opts.keep_explored = true;
  opts.num_threads = 0;  // all cores; result is thread-count-invariant
  const auto search = core::SearchConfiguration(
      pm.profiles, machine, core::HarmonyMode::kPipelineParallel, 600,
      core::OptimizationFlags{}, opts);
  HARMONY_CHECK(search.ok()) << search.status();
  const auto& explored = search.value().explored;
  std::cout << "Configurations explored: " << explored.size() << "\n";

  Rng rng(0xf16u);
  Table t({"config (U_F,|P_F|,U_B,|P_B|)", "estimated (s)", "actual (s)",
           "ratio"});
  const runtime::Runtime rt(machine, pm.model);
  double worst_ratio = 1.0;
  for (int i = 0; i < 15; ++i) {
    const auto& ec = explored[rng.NextBounded(explored.size())];
    const core::TaskGraph g = core::GenerateHarmonyTaskGraph(
        ec.config, core::HarmonyMode::kPipelineParallel, machine.num_gpus, 600,
        core::OptimizationFlags{}, pm.profiles);
    runtime::RuntimeOptions ro;
    ro.optimizer = pm.optimizer;
    const auto metrics = rt.Execute(g, ro);
    if (!metrics.ok()) {
      t.AddRow({ec.config.ToString(), Table::Cell(ec.estimate.iteration_time),
                metrics.status().ToString(), "-"});
      continue;
    }
    const double actual = metrics.value().iteration_time;
    const double ratio = ec.estimate.iteration_time / actual;
    worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
    t.AddRow({ec.config.ToString(), Table::Cell(ec.estimate.iteration_time),
              Table::Cell(actual), Table::Cell(ratio)});
  }
  t.PrintAscii(&std::cout);
  std::cout << "Worst estimate/actual deviation: "
            << Table::Cell((worst_ratio - 1.0) * 100, 1) << "%\n";
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
