// Microbenchmarks for the simulator core's calendar event queue: schedule +
// dispatch throughput of harmony::sim::Engine under three adversarial event
// mixes, with --json emitting the machine-readable baseline BENCH_sim.json
// (seconds per event) that scripts/check_bench.py gates in CI.
//
//   uniform          steady-state: leaders reschedule at jittered deltas, so
//                    the calendar cursor advances smoothly (the happy path
//                    the width auto-tuner targets).
//   bursty           dense ties: every leader schedules an 8-event burst at
//                    one exact timestamp (FIFO tie-break stress, long bucket
//                    chains).
//   far_future_heavy 20% of inserts land ~3 years past the cursor, routing
//                    through the overflow heap and draining back into the
//                    calendar when the clock catches up.
//
// The workloads are seeded and self-contained: identical event counts and
// identical schedules on every run, so the baseline measures the queue, not
// the generator.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "sim/engine.h"

namespace harmony::bench {
namespace {

/// Drives one workload: a chain of "leader" events keeps the queue in steady
/// state, each firing scheduling `burst` no-op followers plus its successor
/// until the event budget is spent. Returns events processed.
class SimCoreDriver {
 public:
  SimCoreDriver(int64_t budget, int burst, double far_fraction)
      : budget_(budget), burst_(burst), far_fraction_(far_fraction) {}

  int64_t Run() {
    Arm();
    engine_.Run();
    return engine_.events_processed();
  }

  const sim::Engine& engine() const { return engine_; }

 private:
  void Arm() {
    if (budget_ <= 0) return;
    const double t = engine_.now() + jitter_(rng_) * 1e-3;
    const int followers =
        static_cast<int>(std::min<int64_t>(burst_ - 1, budget_ - 1));
    for (int b = 0; b < followers; ++b) {
      --budget_;
      if (far_fraction_ > 0 && far_coin_(rng_) < far_fraction_) {
        // ~3 years out: strictly beyond the overflow horizon (one year),
        // whatever the cursor position.
        engine_.At(engine_.now() + 1.0e8 + jitter_(rng_), [] {});
      } else {
        engine_.At(t, [] {});
      }
    }
    --budget_;
    engine_.At(t, [this] { Arm(); });
  }

  sim::Engine engine_;
  std::mt19937_64 rng_{0x5eedc0de};
  std::uniform_real_distribution<double> jitter_{0.5, 1.5};
  std::uniform_real_distribution<double> far_coin_{0.0, 1.0};
  int64_t budget_;
  int burst_;
  double far_fraction_;
};

struct Workload {
  const char* name;
  int burst;
  double far_fraction;
};

int Run(int argc, char** argv) {
  const bool json = JsonFlag(argc, argv);
  PrintHeader("Simulator core: calendar event queue throughput",
              "engine hot path under uniform / bursty / far-future mixes");

  constexpr int64_t kEvents = 200000;
  constexpr int kReps = 5;
  const std::vector<Workload> workloads = {
      {"sim_core_uniform", 1, 0.0},
      {"sim_core_bursty", 8, 0.0},
      {"sim_core_far_future_heavy", 4, 0.2},
  };

  std::vector<JsonObject> records;
  Table t({"Workload", "events", "ns/event", "Mevents/s", "rebuilds",
           "overflow pushes"});
  for (const Workload& w : workloads) {
    int64_t events = 0;
    int64_t rebuilds = 0;
    int64_t overflow = 0;
    std::vector<double> per_event;
    for (int rep = 0; rep < kReps + 1; ++rep) {
      SimCoreDriver driver(kEvents, w.burst, w.far_fraction);
      const auto start = std::chrono::steady_clock::now();
      events = driver.Run();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (rep == 0) continue;  // warm-up: page in the arenas
      per_event.push_back(wall / static_cast<double>(events));
      rebuilds = driver.engine().queue().rebuilds();
      overflow = driver.engine().queue().overflow_pushes();
    }
    const double sec = Median(std::move(per_event));
    t.AddRow({w.name, Table::Cell(events), Table::Cell(sec * 1e9, 1),
              Table::Cell(1e-6 / sec, 2), Table::Cell(rebuilds),
              Table::Cell(overflow)});
    records.push_back(JsonObject()
                          .Set("benchmark", w.name)
                          .Set("iterations", static_cast<int64_t>(events))
                          .Set("reps", kReps)
                          .Set("seconds_per_op", sec));
  }
  t.PrintAscii(&std::cout);

  if (json) {
    const std::string path = "BENCH_sim.json";
    if (WriteJsonFile(path, records)) {
      std::cout << "\nWrote " << records.size() << " records to " << path
                << "\n";
    } else {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace harmony::bench

int main(int argc, char** argv) { return harmony::bench::Run(argc, argv); }
