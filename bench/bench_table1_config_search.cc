// Reproduces Table 1 (configuration search results and Scheduler end-to-end
// time with Harmony PP, 4 GPUs, minibatch 64) and Table 5 (the detailed
// layer packs behind it).

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Configuration search results + Scheduler time (Harmony PP, "
              "4 GPUs, minibatch 64)",
              "Table 1 and Table 5");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();

  Table t({"Model", "U_F", "|P_F|", "U_B", "|P_B|", "configs explored",
           "Scheduler time (s)"});
  std::vector<std::pair<std::string, core::Configuration>> details;
  for (const std::string name : {"BERT96", "GPT2", "VGG416", "ResNet1K"}) {
    const PreparedModel pm = Prepare(name, machine);
    core::SearchOptions opts;
    opts.u_fwd_max = 64;
    opts.u_bwd_max = 64;
    // All cores: the reported Scheduler time depends on the thread count but
    // the chosen configuration does not (see bench_search_scaling).
    opts.num_threads = 0;
    const auto result = core::SearchConfiguration(
        pm.profiles, machine, core::HarmonyMode::kPipelineParallel, 64,
        core::OptimizationFlags{}, opts);
    if (!result.ok()) {
      t.AddRow({name, "-", "-", "-", "-", "-", result.status().ToString()});
      continue;
    }
    const auto& r = result.value();
    t.AddRow({name, Table::Cell(r.best.u_fwd),
              Table::Cell(static_cast<int64_t>(r.best.fwd_packs.size())),
              Table::Cell(r.best.u_bwd),
              Table::Cell(static_cast<int64_t>(r.best.bwd_packs.size())),
              Table::Cell(r.configs_explored),
              Table::Cell(r.search_wall_seconds)});
    details.emplace_back(name, r.best);
  }
  t.PrintAscii(&std::cout);

  std::cout << "\nDetailed layer packs (Table 5):\n";
  for (const auto& [name, config] : details) {
    std::cout << name << "\n  P_F: " << core::PackListToString(config.fwd_packs)
              << "\n  P_B: " << core::PackListToString(config.bwd_packs) << "\n";
  }
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
