// Measures how the parallel configuration search (Algorithm 1 fanned out
// over sim::MultiRunDriver's work-stealing pool) scales with worker count,
// on the Table 1 workload (Harmony PP, 4 GPUs, minibatch 64). With --json,
// also emits the machine-readable perf baseline BENCH_search.json:
//   {model, threads, configs_explored, search_wall_seconds,
//    best_iteration_time}
// The chosen configuration is thread-count-invariant by construction (each
// candidate's outcome lands in its own slot and the merge is a deterministic
// serial pass); every multi-threaded row is asserted bit-identical to the
// serial row before it is recorded, so the baseline doubles as a
// determinism regression check.

#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

int Run(int argc, char** argv) {
  const bool json = JsonFlag(argc, argv);
  PrintHeader("Configuration-search scaling vs worker threads (Harmony PP, "
              "4 GPUs, minibatch 64)",
              "Table 1 (Scheduler wall time) under the thread-pooled search");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  std::cout << "Host hardware concurrency: " << cores << "\n\n";

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  // Each (model, threads) point is searched kReps times and reported as the
  // median wall time: single runs jitter by tens of percent under scheduler
  // noise, which would swamp the scaling signal the baseline pins.
  constexpr int kReps = 5;
  std::vector<JsonObject> records;
  bool parity_ok = true;
  bool no_regression = true;

  Table t({"Model", "threads", "configs explored", "search wall (s)",
           "speedup vs 1T", "best est. iter (s)"});
  // "GPT2+policy" is GPT2 searched with the residency-policy sweep
  // (PolicyMode::kSweep): three tables per grid point, so its wall time pins
  // the cost of the enlarged search space relative to the plain GPT2 rows.
  for (const std::string name :
       {"BERT96", "GPT2", "VGG416", "ResNet1K", "GPT2+policy"}) {
    const bool policy_sweep = name.find("+policy") != std::string::npos;
    const PreparedModel pm = Prepare(
        policy_sweep ? name.substr(0, name.find("+policy")) : name, machine);
    core::SearchResult serial;
    double serial_wall = 0.0;
    for (int threads : thread_counts) {
      core::SearchOptions opts;
      opts.u_fwd_max = 32;
      opts.u_bwd_max = 32;
      opts.num_threads = threads;
      if (policy_sweep) opts.policy_mode = core::PolicyMode::kSweep;
      auto search = [&]() {
        return core::SearchConfiguration(
            pm.profiles, machine, core::HarmonyMode::kPipelineParallel, 64,
            core::OptimizationFlags{}, opts);
      };
      auto result = search();
      if (!result.ok()) {
        t.AddRow({name, Table::Cell(threads), "-", "-", "-",
                  result.status().ToString()});
        continue;
      }
      std::vector<double> walls = {result.value().search_wall_seconds};
      for (int rep = 1; rep < kReps; ++rep) {
        const auto again = search();
        if (again.ok()) walls.push_back(again.value().search_wall_seconds);
      }
      const double wall = Median(std::move(walls));
      const auto& r = result.value();
      if (threads == thread_counts.front()) {
        serial = r;
        serial_wall = wall;
      } else {
        // Determinism guarantee: identical winner at every thread count.
        const bool same =
            r.best.u_fwd == serial.best.u_fwd &&
            r.best.u_bwd == serial.best.u_bwd &&
            r.best.fwd_packs == serial.best.fwd_packs &&
            r.best.bwd_packs == serial.best.bwd_packs &&
            r.best.policy == serial.best.policy &&
            r.best_estimate.iteration_time ==
                serial.best_estimate.iteration_time &&
            r.configs_explored == serial.configs_explored &&
            r.configs_feasible == serial.configs_feasible;
        if (!same) {
          parity_ok = false;
          std::cout << "PARITY VIOLATION: " << name << " at " << threads
                    << " threads diverged from the serial search\n";
        }
      }
      const double speedup = serial_wall > 0 ? serial_wall / wall : 1.0;
      // With more workers than cores the pool only adds scheduling overhead;
      // "no regression" = within 25% of the serial wall time.
      if (threads > 1 && speedup < 0.75) no_regression = false;
      t.AddRow({name, Table::Cell(threads), Table::Cell(r.configs_explored),
                Table::Cell(wall, 4), Table::Cell(speedup),
                Table::Cell(r.best_estimate.iteration_time, 4)});
      records.push_back(
          JsonObject()
              .Set("model", name)
              .Set("threads", threads)
              .Set("reps", kReps)
              .Set("configs_explored", r.configs_explored)
              .Set("search_wall_seconds", wall)
              .Set("best_iteration_time", r.best_estimate.iteration_time));
    }
  }
  t.PrintAscii(&std::cout);

  std::cout << "\nDeterminism (identical best config at all thread counts): "
            << (parity_ok ? "PASS" : "FAIL") << "\n";
  if (cores >= 4) {
    std::cout << "Expectation on this >=4-core host: >=2x speedup at 4 "
                 "threads (see table)\n";
  } else {
    std::cout << "Single/dual-core host: expecting no regression from "
                 "threading overhead: "
              << (no_regression ? "PASS" : "FAIL") << "\n";
  }

  if (json) {
    const std::string path = "BENCH_search.json";
    if (WriteJsonFile(path, records)) {
      std::cout << "Wrote " << records.size() << " records to " << path << "\n";
    }
  }
  return parity_ok ? 0 : 1;
}

}  // namespace
}  // namespace harmony::bench

int main(int argc, char** argv) { return harmony::bench::Run(argc, argv); }
