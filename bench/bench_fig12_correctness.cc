// Reproduces Figure 12 / Figure 19 / Table 3: Harmony provides synchronous
// SGD semantics — per-minibatch training losses match the baseline exactly
// (bit-for-bit), on a BERT-style classifier and a GPT-style causal model,
// with single-device, wrap-around-pipeline and data-parallel execution.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"
#include "tensor/train.h"

namespace harmony::bench {
namespace {

using tensor::ExecutionScheme;
using tensor::ExecutionSchemeName;
using tensor::TinyModelConfig;
using tensor::TrainOptions;
using tensor::TrainResult;

void LossCurves(const std::string& title, const TinyModelConfig& mc) {
  TrainOptions opts;
  opts.iterations = 12;
  opts.minibatch = 16;
  opts.microbatch = 4;
  opts.fwd_microbatch = 8;
  opts.packs = {core::Pack{0, 2}, core::Pack{3, 5}, core::Pack{6, 7}};

  const ExecutionScheme schemes[] = {
      ExecutionScheme::kBaseline1Gpu, ExecutionScheme::kHarmony1Gpu,
      ExecutionScheme::kHarmonyPp, ExecutionScheme::kBaselineDp,
      ExecutionScheme::kHarmonyDp};
  std::vector<TrainResult> results;
  for (ExecutionScheme s : schemes) results.push_back(Train(mc, s, opts));

  std::cout << title << " — per-minibatch training loss:\n";
  Table t({"iter", "Baseline 1GPU", "Harmony 1GPU", "Harmony PP",
           "Baseline DP", "Harmony DP"});
  for (int i = 0; i < opts.iterations; ++i) {
    std::vector<std::string> row = {Table::Cell(i)};
    for (const auto& r : results) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9f", r.losses[i]);
      row.push_back(buf);
    }
    t.AddRow(row);
  }
  t.PrintAscii(&std::cout);

  const bool harmony_exact = results[0].losses == results[1].losses &&
                             results[0].losses == results[2].losses;
  const bool dp_exact = results[3].losses == results[4].losses;
  std::cout << "Harmony (1 GPU / PP) bit-exact vs baseline: "
            << (harmony_exact ? "YES" : "NO") << "\n";
  std::cout << "Harmony DP bit-exact vs baseline DP:        "
            << (dp_exact ? "YES" : "NO") << "\n";

  std::cout << "Final eval accuracy (Table 3 analogue): ";
  for (size_t i = 0; i < results.size(); ++i) {
    std::cout << ExecutionSchemeName(schemes[i]) << "="
              << Table::Cell(100 * results[i].eval_accuracy, 1) << "% ";
  }
  std::cout << "\n\n";
}

void Run() {
  PrintHeader("Correctness of training in Harmony",
              "Figure 12, Figure 19, Table 3");
  TinyModelConfig bert;  // bidirectional classifier (BERT-on-MRPC analogue)
  LossCurves("BERT-style classification fine-tune (Fig 12 analogue)", bert);

  TinyModelConfig gpt;
  gpt.causal = true;
  gpt.classes = gpt.vocab;  // wide LM-style head (GPT2-on-WikiText analogue)
  LossCurves("GPT-style causal fine-tune (Fig 19 analogue)", gpt);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
