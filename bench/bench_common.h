#ifndef HARMONY_BENCH_BENCH_COMMON_H_
#define HARMONY_BENCH_BENCH_COMMON_H_

#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/scheduler.h"
#include "model/memory.h"
#include "model/models.h"
#include "profile/profiler.h"
#include "runtime/runtime.h"

namespace harmony::bench {

/// A model prepared for experiments: sequentialized graph, profile database
/// for the given GPU, and the optimizer the paper trains it with (Sec 5.1).
struct PreparedModel {
  std::string name;
  model::SequentialModel model;
  profile::ProfileDb profiles;
  model::Optimizer optimizer;
};

/// Builds one of the paper's evaluation models by name: "BERT-Large",
/// "BERT96", "GPT2", "GPT2-Medium", "VGG416", "ResNet1K", or "GPT2-<N>B".
PreparedModel Prepare(const std::string& name, const hw::MachineSpec& machine);

/// The result of running one scheme once.
struct SchemeResult {
  std::string scheme;
  bool ok = false;
  std::string error;
  TimeSec iteration_time = 0;
  double throughput = 0;  // samples/s
  runtime::RunMetrics metrics;
  core::Configuration config;        // Harmony/ZeRO configs
  core::SearchResult search;         // populated for Harmony schemes
};

/// All schemes of Fig 9 plus ZeRO-Infinity.
enum class Scheme {
  kDpSwap,
  kGpSwap,
  kGpSwapR,
  k2bwSwap,
  k2bwSwapR,
  kHarmonyDp,
  kHarmonyPp,
  kZeroInfinity,
};

const char* SchemeName(Scheme scheme);

struct RunSchemeOptions {
  int u_max = 16;                      // Harmony search U_FMAX/U_BMAX
  int baseline_u_cap = 16;             // cap for MaxFeasibleMicrobatch
  core::OptimizationFlags flags;       // Harmony optimization toggles
  /// Reuse a previously found Harmony configuration (e.g. ZeRO sharing
  /// Harmony's config per Sec 5.3, or the expert-config ablation).
  std::optional<core::Configuration> fixed_config;
};

/// Schedules (if applicable) and executes one scheme for one iteration on
/// the machine; OOMs and scheduling failures are reported, not fatal.
SchemeResult RunScheme(Scheme scheme, const PreparedModel& pm,
                       const hw::MachineSpec& machine, int minibatch,
                       const RunSchemeOptions& options = {});

/// Prints a standard header for a figure/table reproduction.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// One flat JSON object, rendered in insertion order. Just enough JSON for
/// machine-readable perf baselines (BENCH_*.json); not a general serializer.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value);
  JsonObject& Set(const std::string& key, const char* value);
  JsonObject& Set(const std::string& key, int64_t value);
  JsonObject& Set(const std::string& key, int value);
  JsonObject& Set(const std::string& key, double value);

  std::string ToString() const;

 private:
  JsonObject& SetRaw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// True when argv contains `--json` — the standard bench flag selecting
/// machine-readable output alongside the human tables.
bool JsonFlag(int argc, char** argv);

/// Standard measurement for `BENCH_*.json` baselines: one untimed warm-up
/// call, then `reps` timed repetitions of `iters` back-to-back iterations
/// each, reporting the *median* seconds-per-op across repetitions. The median
/// rejects one-off scheduler/allocator hiccups that a single timed run (the
/// previous scheme) folded straight into the checked-in baseline.
double MedianSecondsPerOp(int reps, int iters,
                          const std::function<void()>& fn);

/// Median of `samples` (averages the two middle elements for even sizes).
/// Exposed for benches that collect their own wall-time samples.
double Median(std::vector<double> samples);

/// Writes `records` to `path` as a pretty-printed JSON array (one object per
/// line). Returns false (with a message on stderr) if the file can't be
/// written.
bool WriteJsonFile(const std::string& path,
                   const std::vector<JsonObject>& records);

}  // namespace harmony::bench

#endif  // HARMONY_BENCH_BENCH_COMMON_H_
