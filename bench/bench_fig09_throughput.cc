// Reproduces Figure 9 (training throughput of Harmony DP/PP vs the per-GPU
// swap baselines across models and minibatch sizes, 4 GPUs) and its
// companion Figure 20 (iteration time normalized to Harmony PP).

#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

const Scheme kSchemes[] = {Scheme::kDpSwap,   Scheme::kGpSwap,
                           Scheme::kGpSwapR,  Scheme::k2bwSwap,
                           Scheme::k2bwSwapR, Scheme::kHarmonyDp,
                           Scheme::kHarmonyPp};

void Run() {
  PrintHeader("Training throughput, 4 GPUs", "Figure 9 + Figure 20");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();

  for (const std::string name : {"BERT96", "GPT2", "VGG416", "ResNet1K"}) {
    const PreparedModel pm = Prepare(name, machine);
    Table tput({"scheme", "mb=8", "mb=16", "mb=32", "mb=64"});
    Table norm({"scheme", "mb=8", "mb=16", "mb=32", "mb=64"});
    std::map<std::string, std::vector<std::string>> tput_rows, norm_rows;
    std::map<int, double> pp_time;

    std::map<std::pair<int, int>, SchemeResult> results;
    const std::vector<int> minibatches = {8, 16, 32, 64};
    for (size_t mi = 0; mi < minibatches.size(); ++mi) {
      for (size_t si = 0; si < std::size(kSchemes); ++si) {
        RunSchemeOptions opts;
        opts.u_max = 16;
        results[{static_cast<int>(si), static_cast<int>(mi)}] =
            RunScheme(kSchemes[si], pm, machine, minibatches[mi], opts);
      }
      const auto& pp = results[{5 + 1, static_cast<int>(mi)}];  // Harmony PP
      pp_time[static_cast<int>(mi)] = pp.ok ? pp.iteration_time : 0.0;
    }

    for (size_t si = 0; si < std::size(kSchemes); ++si) {
      std::vector<std::string> trow = {SchemeName(kSchemes[si])};
      std::vector<std::string> nrow = {SchemeName(kSchemes[si])};
      for (size_t mi = 0; mi < minibatches.size(); ++mi) {
        const auto& r = results[{static_cast<int>(si), static_cast<int>(mi)}];
        if (!r.ok) {
          trow.push_back("OOM");
          nrow.push_back("OOM");
          continue;
        }
        trow.push_back(Table::Cell(r.throughput));
        const double base = pp_time[static_cast<int>(mi)];
        nrow.push_back(base > 0 ? Table::Cell(r.iteration_time / base) : "-");
      }
      tput.AddRow(trow);
      norm.AddRow(nrow);
    }
    std::cout << name << " throughput (samples/s):\n";
    tput.PrintAscii(&std::cout);
    std::cout << name << " iteration time normalized to Harmony PP (Fig 20, "
                 "higher is worse):\n";
    norm.PrintAscii(&std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
