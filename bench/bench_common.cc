#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace harmony::bench {

PreparedModel Prepare(const std::string& name, const hw::MachineSpec& machine) {
  model::LayerGraph graph;
  model::Optimizer opt = model::Optimizer::kAdam;
  if (name == "BERT-Large") {
    graph = model::BertLarge();
  } else if (name == "BERT96") {
    graph = model::Bert96();
  } else if (name == "GPT2") {
    graph = model::Gpt2();
  } else if (name == "GPT2-Medium") {
    graph = model::Gpt2Medium();
  } else if (name == "VGG416") {
    graph = model::Vgg416();
    opt = model::Optimizer::kSgdMomentum;
  } else if (name == "ResNet1K") {
    graph = model::ResNet1K();
    opt = model::Optimizer::kSgdMomentum;
  } else if (name.rfind("GPT2-", 0) == 0 && name.back() == 'B') {
    const double billions = std::stod(name.substr(5, name.size() - 6));
    graph = model::Gpt2Custom(billions);
  } else {
    HARMONY_LOG(Fatal) << "unknown model " << name;
  }
  model::SequentialModel seq = model::Sequentialize(graph);
  const profile::Profiler profiler(machine.gpu, profile::ProfilerOptions{});
  profile::ProfileDb db = profiler.Profile(seq);
  return PreparedModel{name, std::move(seq), std::move(db), opt};
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kDpSwap: return "DP Swap";
    case Scheme::kGpSwap: return "GP Swap";
    case Scheme::kGpSwapR: return "GP Swap (R)";
    case Scheme::k2bwSwap: return "2BW Swap";
    case Scheme::k2bwSwapR: return "2BW Swap (R)";
    case Scheme::kHarmonyDp: return "Harmony DP";
    case Scheme::kHarmonyPp: return "Harmony PP";
    case Scheme::kZeroInfinity: return "ZeRO-Infinity";
  }
  return "?";
}

SchemeResult RunScheme(Scheme scheme, const PreparedModel& pm,
                       const hw::MachineSpec& machine, int minibatch,
                       const RunSchemeOptions& options) {
  SchemeResult result;
  result.scheme = SchemeName(scheme);
  const int n = machine.num_gpus;

  core::TaskGraph graph;
  runtime::RuntimeOptions run_opts;
  run_opts.optimizer = pm.optimizer;

  switch (scheme) {
    case Scheme::kDpSwap: {
      const int u = baselines::MaxFeasibleMicrobatch(
          pm.profiles, machine, /*recompute=*/false, /*replicas=*/n,
          options.baseline_u_cap);
      graph = baselines::DpSwap(pm.profiles, n, minibatch, u);
      break;
    }
    case Scheme::kGpSwap:
    case Scheme::kGpSwapR: {
      const bool r = scheme == Scheme::kGpSwapR;
      const int u = baselines::MaxFeasibleMicrobatch(pm.profiles, machine, r, 1,
                                                     options.baseline_u_cap);
      graph = baselines::GpipeSwap(pm.profiles, n, minibatch, u, r);
      break;
    }
    case Scheme::k2bwSwap:
    case Scheme::k2bwSwapR: {
      const bool r = scheme == Scheme::k2bwSwapR;
      const int u = baselines::MaxFeasibleMicrobatch(pm.profiles, machine, r, 1,
                                                     options.baseline_u_cap);
      graph = baselines::PipeDream2bwSwap(pm.profiles, n, minibatch, u, r);
      break;
    }
    case Scheme::kHarmonyDp:
    case Scheme::kHarmonyPp: {
      const auto mode = scheme == Scheme::kHarmonyDp
                            ? core::HarmonyMode::kDataParallel
                            : core::HarmonyMode::kPipelineParallel;
      if (options.fixed_config) {
        result.config = *options.fixed_config;
        graph = core::GenerateHarmonyTaskGraph(result.config, mode, n, minibatch,
                                               options.flags, pm.profiles);
      } else {
        core::SearchOptions search;
        search.u_fwd_max = options.u_max;
        search.u_bwd_max = options.u_max;
        auto found = core::SearchConfiguration(pm.profiles, machine, mode,
                                               minibatch, options.flags, search);
        if (!found.ok()) {
          result.error = found.status().ToString();
          return result;
        }
        result.search = found.value();
        result.config = found.value().best;
        graph = core::GenerateHarmonyTaskGraph(result.config, mode, n, minibatch,
                                               options.flags, pm.profiles);
      }
      break;
    }
    case Scheme::kZeroInfinity: {
      core::Configuration config;
      if (options.fixed_config) {
        config = *options.fixed_config;
      } else {
        // Share Harmony DP's configuration (Sec 5.3).
        core::SearchOptions search;
        search.u_fwd_max = options.u_max;
        search.u_bwd_max = options.u_max;
        auto found = core::SearchConfiguration(
            pm.profiles, machine, core::HarmonyMode::kDataParallel, minibatch,
            core::OptimizationFlags{}, search);
        if (!found.ok()) {
          result.error = found.status().ToString();
          return result;
        }
        config = found.value().best;
      }
      result.config = config;
      graph = baselines::ZeroInfinity(pm.profiles, config, n, minibatch);
      run_opts.host_static_overhead =
          baselines::ZeroInfinityHostOverhead(pm.model);
      break;
    }
  }

  const runtime::Runtime rt(machine, pm.model);
  auto metrics = rt.Execute(graph, run_opts);
  if (!metrics.ok()) {
    result.error = metrics.status().ToString();
    return result;
  }
  result.ok = true;
  result.metrics = std::move(metrics).value();
  result.iteration_time = result.metrics.iteration_time;
  result.throughput = result.metrics.Throughput(minibatch);
  return result;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "Reproduces: " << paper_ref << "\n\n";
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

JsonObject& JsonObject::SetRaw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& value) {
  return SetRaw(key, "\"" + JsonEscape(value) + "\"");
}

JsonObject& JsonObject::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JsonObject& JsonObject::Set(const std::string& key, int64_t value) {
  return SetRaw(key, std::to_string(value));
}

JsonObject& JsonObject::Set(const std::string& key, int value) {
  return Set(key, static_cast<int64_t>(value));
}

JsonObject& JsonObject::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return SetRaw(key, buf);
}

std::string JsonObject::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

double Median(std::vector<double> samples) {
  HARMONY_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

double MedianSecondsPerOp(int reps, int iters,
                          const std::function<void()>& fn) {
  HARMONY_CHECK_GT(reps, 0);
  HARMONY_CHECK_GT(iters, 0);
  fn();  // warm-up (model/profile statics, allocator, branch predictors)
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    samples.push_back(dt.count() / iters);
  }
  return Median(std::move(samples));
}

bool JsonFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  return false;
}

bool WriteJsonFile(const std::string& path,
                   const std::vector<JsonObject>& records) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out << "  " << records[i].ToString() << (i + 1 < records.size() ? "," : "")
        << "\n";
  }
  out << "]\n";
  return out.good();
}

}  // namespace harmony::bench
