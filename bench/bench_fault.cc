// Fault-machinery overhead baseline: what does carrying the chaos layer cost
// when nobody is injecting anything?
//
// Every hot path in the execution pipeline now hosts an injection site (a
// stall probe per stream op, a failure branch per transfer and allocation
// grant, fault bookkeeping per tensor). With a default — disabled — FaultPlan
// those sites must cost one predictable branch each and nothing more: the
// checked-in BENCH_fault.json pins the fault-off iteration wall-clock, and
// the ctest Bench gate holds it to a 2% leash (scripts/check_bench.py
// --tolerance 0.02), an order of magnitude tighter than the 25% leash on the
// other perf gates.
//
// The armed run (every fault kind at the chaos harness's survivable rates)
// is recorded alongside for scale — it is informational, not gated: recovery
// work is supposed to cost time.
//
// `--json` writes BENCH_fault.json (CWD) in the `benchmark`/`seconds_per_op`
// record format scripts/check_bench.py understands.

// The replan rows measure the adapt loop under a persistent link failure:
// detect -> applied latency (simulated time from the injection to the new
// plan taking over, switchover downtime included) and the post-switchover
// iteration time. Both are pure simulated-time quantities — deterministic to
// the bit from the fault plan — so they ride the same 2% gate as fault_off
// without any scheduler-noise risk.

#include <iostream>
#include <string>
#include <vector>

#include "adapt/runner.h"
#include "bench/bench_common.h"
#include "core/packing.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "runtime/runtime.h"
#include "serve/wire.h"

namespace {

using namespace harmony;
using bench::JsonObject;

struct Workload {
  hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  model::SequentialModel model;
  core::TaskGraph graph;
};

Workload BuildBert96() {
  Workload w;
  const bench::PreparedModel pm = bench::Prepare("BERT96", w.machine);
  w.model = pm.model;

  core::PackingOptions opts;
  opts.capacity = static_cast<Bytes>(w.machine.gpu.usable_memory() * 0.85);
  core::Configuration c;
  c.u_fwd = c.u_bwd = 4;
  c.bwd_packs = core::BackwardPacks(4, pm.profiles, opts).value();
  opts.min_packs = 4;
  c.fwd_packs = core::ForwardPacks(4, c.bwd_packs, pm.profiles, opts).value();
  w.graph = core::GenerateHarmonyTaskGraph(c, core::HarmonyMode::kPipelineParallel,
                                           4, 16, core::OptimizationFlags{},
                                           pm.profiles);
  return w;
}

/// Same rates as the chaos harness's SurvivableChaos plan.
fault::FaultPlan ArmedPlan() {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xBE7C;
  p.transfer_failure_rate = 0.03;
  p.link_flap_interval = 0.2;
  p.link_flap_duration = 0.05;
  p.link_degrade_factor = 0.25;
  p.mem_pressure_interval = 0.5;
  p.mem_pressure_duration = 0.1;
  p.mem_pressure_fraction = 0.2;
  p.alloc_failure_rate = 0.02;
  p.stream_stall_rate = 0.02;
  p.stream_stall_duration = 0.002;
  return p;
}

double TimeExecute(const Workload& w, const runtime::RuntimeOptions& opts,
                   int reps) {
  const runtime::Runtime rt(w.machine, w.model);
  const auto run = [&]() {
    const auto metrics = rt.Execute(w.graph, opts);
    HARMONY_CHECK(metrics.ok()) << metrics.status();
  };
  run();  // warm the allocator and page cache outside the timed reps
  // A single iteration is ~2 ms — too short for a 2% gate against scheduler
  // noise — so each sample averages a batch of 25 and the gate pins the
  // *minimum* sample: scheduler preemption and frequency ramps only ever add
  // time, so min-of-N converges on the code's true cost where a median still
  // jitters.
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const double s = bench::MedianSecondsPerOp(1, /*iters=*/25, run);
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct ReplanNumbers {
  double detect_to_applied = 0;   // simulated seconds, injection -> new plan
  double post_switch_iteration = 0;  // simulated seconds under the new plan
};

/// Drives the adapt loop under a persistent uplink failure and reads the
/// detect->applied story off the returned decision log. Simulated time only.
ReplanNumbers MeasureReplan() {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  fault::FaultPlan fp;
  fp.enabled = true;
  fp.seed = 0xBE7C;
  fp.link_fail_at = 0.005;
  fp.link_fail_link = machine.LinkSwitchUp(0);
  fp.link_fail_factor = 0.02;

  adapt::AdaptOptions ao;
  ao.iterations = 4;
  ao.replan_margin = -1.0;  // the row measures mechanics, not the margin
  ao.fault_plan = fp;
  adapt::AdaptiveRunner runner(machine,
                               serve::ModelSpec::FromName("BERT96").value(),
                               core::HarmonyMode::kPipelineParallel, 16, {},
                               {}, ao);
  const auto run = runner.Run();
  HARMONY_CHECK(run.ok()) << run.status();
  const adapt::AdaptResult& ar = run.value();
  HARMONY_CHECK(ar.switched);
  HARMONY_CHECK_EQ(static_cast<int>(ar.decisions.size()), 1);

  ReplanNumbers out;
  // Injection lands at link_fail_at inside the first iteration; the new plan
  // takes over after the decision iteration's boundary plus the reconciling
  // switchover drain/fill.
  for (int i = 0; i <= ar.decisions[0].iteration; ++i) {
    out.detect_to_applied += ar.iterations[i].iteration_time;
  }
  out.detect_to_applied -= fp.link_fail_at;
  out.detect_to_applied += ar.decisions[0].switchover_seconds;
  out.post_switch_iteration =
      ar.iterations[ar.switch_iteration].iteration_time;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool as_json = argc > 1 && std::string(argv[1]) == "--json";
  bench::PrintHeader("Fault-machinery overhead (BERT96 pp mb16 u4)",
                     "chaos layer; injection sites on every hot path");

  const Workload w = BuildBert96();
  constexpr int kReps = 12;

  runtime::RuntimeOptions off;  // default: fault_plan disabled
  const double fault_off = TimeExecute(w, off, kReps);

  runtime::RuntimeOptions armed;
  armed.fault_plan = ArmedPlan();
  const double fault_armed = TimeExecute(w, armed, kReps);

  const ReplanNumbers replan = MeasureReplan();

  std::cout << "  fault off   : " << fault_off * 1e3 << " ms/iteration\n"
            << "  fault armed : " << fault_armed * 1e3 << " ms/iteration ("
            << fault_armed / fault_off << "x, incl. recovery work)\n"
            << "  replan      : detect->applied " << replan.detect_to_applied
            << " s (simulated), post-switchover iteration "
            << replan.post_switch_iteration * 1e3 << " ms\n";

  if (!as_json) return 0;
  std::vector<JsonObject> records;
  records.emplace_back();
  records.back()
      .Set("benchmark", "fault_off_bert96_iteration")
      .Set("seconds_per_op", fault_off);
  records.emplace_back();
  records.back()
      .Set("benchmark", "fault_armed_bert96_iteration")
      .Set("seconds_per_op", fault_armed)
      .Set("armed_over_off", fault_armed / fault_off);
  records.emplace_back();
  records.back()
      .Set("benchmark", "replan_detect_to_applied_bert96")
      .Set("seconds_per_op", replan.detect_to_applied);
  records.emplace_back();
  records.back()
      .Set("benchmark", "replan_post_switchover_bert96_iteration")
      .Set("seconds_per_op", replan.post_switch_iteration);
  return bench::WriteJsonFile("BENCH_fault.json", records) ? 0 : 1;
}
