// Reproduces Figure 13: efficiency breakdown of Harmony's optimizations for
// GPT2 on 4 GPUs. Each optimization is turned off in isolation; the table
// reports the resulting slowdown relative to all-on (higher is worse).
// Also covers the "expert-picked config" ablation (config search off).

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

struct Ablation {
  std::string name;
  void (*apply)(core::OptimizationFlags*);
};

const Ablation kAblations[] = {
    {"no input-batch grouping",
     [](core::OptimizationFlags* f) { f->input_batch_grouping = false; }},
    {"no jit scheduling", [](core::OptimizationFlags* f) {
       f->jit_update = false;
       f->jit_compute = false;
     }},
    {"no p2p transfers",
     [](core::OptimizationFlags* f) { f->p2p_transfers = false; }},
    {"no tensor prefetch",
     [](core::OptimizationFlags* f) { f->prefetch = false; }},
    {"no optimizer offload",
     [](core::OptimizationFlags* f) { f->cpu_optimizer = false; }},
};

void Run() {
  PrintHeader("Efficiency breakdown (ablations), GPT2, 4 GPUs, minibatch 128",
              "Figure 13");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const PreparedModel pm = Prepare("GPT2", machine);
  const int minibatch = 128;

  for (Scheme mode : {Scheme::kHarmonyDp, Scheme::kHarmonyPp}) {
    const SchemeResult all_on = RunScheme(mode, pm, machine, minibatch);
    HARMONY_CHECK(all_on.ok) << all_on.error;

    Table t({"configuration", "iteration time (s)", "slowdown vs all-on",
             "global swap (GiB)"});
    t.AddRow({"all optimizations on", Table::Cell(all_on.iteration_time),
              Table::Cell(1.0),
              Table::Cell(static_cast<double>(all_on.metrics.total_swap()) / GiB(1), 1)});

    for (const Ablation& a : kAblations) {
      RunSchemeOptions opts;
      a.apply(&opts.flags);
      // Keep the all-on configuration: the ablation changes the runtime
      // behaviour, not the packing (matching the paper's methodology).
      opts.fixed_config = all_on.config;
      const SchemeResult r = RunScheme(mode, pm, machine, minibatch, opts);
      if (!r.ok) {
        t.AddRow({a.name, r.error, "-", "-"});
        continue;
      }
      t.AddRow({a.name, Table::Cell(r.iteration_time),
                Table::Cell(r.iteration_time / all_on.iteration_time),
                Table::Cell(static_cast<double>(r.metrics.total_swap()) / GiB(1), 1)});
    }

    // "No config search": an expert picks uniform packs of 8 layers and the
    // largest feasible microbatch — plausible, but not search-optimal.
    {
      core::Configuration expert;
      expert.u_fwd = expert.u_bwd = 2;
      const int r_layers = pm.profiles.num_layers();
      for (int lo = 0; lo < r_layers; lo += 8) {
        expert.bwd_packs.push_back(
            core::Pack{lo, std::min(lo + 7, r_layers - 1)});
      }
      expert.fwd_packs.assign(expert.bwd_packs.begin(),
                              expert.bwd_packs.end() - 1);
      RunSchemeOptions opts;
      opts.fixed_config = expert;
      const SchemeResult r = RunScheme(mode, pm, machine, minibatch, opts);
      if (r.ok) {
        t.AddRow({"no config search (expert packs)", Table::Cell(r.iteration_time),
                  Table::Cell(r.iteration_time / all_on.iteration_time),
                  Table::Cell(static_cast<double>(r.metrics.total_swap()) / GiB(1), 1)});
      } else {
        t.AddRow({"no config search (expert packs)", r.error, "-", "-"});
      }
    }

    std::cout << SchemeName(mode) << ":\n";
    t.PrintAscii(&std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
