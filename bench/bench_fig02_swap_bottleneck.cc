// Reproduces Figure 2: the swap bottleneck of per-GPU memory virtualization.
// (b) data-parallel swap volume grows linearly with the GPU count, throttling
// throughput on the shared host link; (c) pipeline-parallel per-GPU swap
// loads are unbalanced/structure-dependent.

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Swap bottleneck of per-GPU virtualization (BERT-Large)",
              "Figure 2 (b) and (c)");
  const hw::MachineSpec base = hw::MachineSpec::Commodity4Gpu();

  // (b) DP Swap with 1, 2, 4 GPUs at per-GPU batch 5 (the paper's setting).
  Table dp({"GPUs", "minibatch", "per-GPU swap (GiB)", "total swap (GiB)",
            "throughput (samples/s)"});
  for (int n : {1, 2, 4}) {
    const hw::MachineSpec machine = base.WithNumGpus(n);
    const PreparedModel pm = Prepare("BERT-Large", machine);
    const int minibatch = 5 * n;
    RunSchemeOptions opts;
    opts.baseline_u_cap = 5;
    const SchemeResult r = RunScheme(Scheme::kDpSwap, pm, machine, minibatch, opts);
    if (!r.ok) {
      dp.AddRow({Table::Cell(n), Table::Cell(minibatch), r.error, "-", "-"});
      continue;
    }
    dp.AddRow({Table::Cell(n), Table::Cell(minibatch),
               Table::Cell(static_cast<double>(r.metrics.max_device_swap()) / GiB(1)),
               Table::Cell(static_cast<double>(r.metrics.total_swap()) / GiB(1)),
               Table::Cell(r.throughput)});
  }
  std::cout << "(b) DP Swap: total swap volume grows ~linearly with GPUs\n";
  dp.PrintAscii(&std::cout);

  // (c) Pipeline parallelism with per-GPU swapping: per-stage swap loads.
  const PreparedModel pm = Prepare("BERT-Large", base);
  RunSchemeOptions opts;
  opts.baseline_u_cap = 5;
  const SchemeResult gp = RunScheme(Scheme::kGpSwap, pm, base, 20, opts);
  std::cout << "\n(c) GP Swap per-stage swap load (minibatch 20):\n";
  Table pp({"GPU (stage)", "swap in (GiB)", "swap out (GiB)", "total (GiB)"});
  if (gp.ok) {
    for (int d = 0; d < base.num_gpus; ++d) {
      pp.AddRow({Table::Cell(d),
                 Table::Cell(static_cast<double>(gp.metrics.swap_in_bytes[d]) / GiB(1)),
                 Table::Cell(static_cast<double>(gp.metrics.swap_out_bytes[d]) / GiB(1)),
                 Table::Cell(static_cast<double>(gp.metrics.device_swap(d)) / GiB(1))});
    }
  } else {
    std::cout << "GP Swap failed: " << gp.error << "\n";
  }
  pp.PrintAscii(&std::cout);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
