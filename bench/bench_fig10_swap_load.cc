// Reproduces Figure 10: swap load of the different approaches for GPT2 on 4
// GPUs. (a) per-GPU swap load at a fixed minibatch; (b) global swap volume
// as the minibatch grows — Harmony's stays orders of magnitude lower.

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

const Scheme kSchemes[] = {Scheme::kDpSwap,   Scheme::kGpSwap,
                           Scheme::kGpSwapR,  Scheme::k2bwSwap,
                           Scheme::k2bwSwapR, Scheme::kHarmonyDp,
                           Scheme::kHarmonyPp};

void Run() {
  PrintHeader("Swap load for GPT2 on 4 GPUs", "Figure 10 (a) and (b)");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const PreparedModel pm = Prepare("GPT2", machine);

  std::cout << "(a) per-GPU swap load, minibatch 32 (GiB):\n";
  Table per_gpu({"scheme", "GPU0", "GPU1", "GPU2", "GPU3", "global"});
  for (Scheme s : kSchemes) {
    const SchemeResult r = RunScheme(s, pm, machine, 32);
    std::vector<std::string> row = {SchemeName(s)};
    if (!r.ok) {
      row.insert(row.end(), {"OOM", "-", "-", "-", "-"});
    } else {
      for (int d = 0; d < 4; ++d) {
        row.push_back(
            Table::Cell(static_cast<double>(r.metrics.device_swap(d)) / GiB(1), 1));
      }
      row.push_back(
          Table::Cell(static_cast<double>(r.metrics.total_swap()) / GiB(1), 1));
    }
    per_gpu.AddRow(row);
  }
  per_gpu.PrintAscii(&std::cout);

  std::cout << "\n(b) global swap volume vs minibatch size (GiB):\n";
  Table global({"scheme", "mb=8", "mb=16", "mb=32", "mb=64"});
  for (Scheme s : kSchemes) {
    std::vector<std::string> row = {SchemeName(s)};
    for (int d : {8, 16, 32, 64}) {
      const SchemeResult r = RunScheme(s, pm, machine, d);
      row.push_back(r.ok ? Table::Cell(
                               static_cast<double>(r.metrics.total_swap()) / GiB(1), 1)
                         : "OOM");
    }
    global.AddRow(row);
  }
  global.PrintAscii(&std::cout);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
