// Reproduces Figure 15 (training 10-40B-parameter GPT2 variants at the limit
// of single-server CPU memory, 8 GPUs; ZeRO-Infinity runs out of host memory
// at 40B) and Figure 16 (scalability of Harmony from 1 to 8 GPUs).

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Massive models at the CPU-memory limit (8x 1080Ti, 750 GB host)",
              "Figure 15 and Figure 16");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity8Gpu();

  std::cout << "(Fig 15) 10-40B GPT2 variants, minibatch 48:\n";
  Table f15({"model", "scheme", "throughput (samples/s)", "global swap (GiB)",
             "peak host (GiB)"});
  for (const std::string name : {"GPT2-10B", "GPT2-20B", "GPT2-30B", "GPT2-40B"}) {
    const PreparedModel pm = Prepare(name, machine);
    for (Scheme s : {Scheme::kZeroInfinity, Scheme::kHarmonyDp, Scheme::kHarmonyPp}) {
      RunSchemeOptions opts;
      opts.u_max = 8;
      const SchemeResult r = RunScheme(s, pm, machine, 48, opts);
      if (!r.ok) {
        f15.AddRow({name, SchemeName(s), r.error, "-", "-"});
        continue;
      }
      f15.AddRow({name, SchemeName(s), Table::Cell(r.throughput, 3),
                  Table::Cell(static_cast<double>(r.metrics.total_swap()) / GiB(1), 1),
                  Table::Cell(static_cast<double>(r.metrics.peak_host_bytes) / GiB(1), 1)});
    }
  }
  f15.PrintAscii(&std::cout);

  std::cout << "\n(Fig 16) Harmony scalability, 1-8 GPUs, minibatch = 4 x GPUs:\n";
  Table f16({"model", "scheme", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"});
  for (const std::string name : {"GPT2-10B", "GPT2-20B", "GPT2-40B"}) {
    for (Scheme s : {Scheme::kHarmonyDp, Scheme::kHarmonyPp}) {
      std::vector<std::string> row = {name, SchemeName(s)};
      for (int n : {1, 2, 4, 8}) {
        const hw::MachineSpec sub = machine.WithNumGpus(n);
        const PreparedModel pm = Prepare(name, sub);
        RunSchemeOptions opts;
        opts.u_max = 8;
        const SchemeResult r = RunScheme(s, pm, sub, 4 * n, opts);
        row.push_back(r.ok ? Table::Cell(r.throughput, 3) : std::string("OOM"));
      }
      f16.AddRow(row);
    }
  }
  f16.PrintAscii(&std::cout);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
