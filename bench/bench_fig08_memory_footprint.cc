// Reproduces Figure 8 (transformers) and Figure 18 (CNNs): the training
// memory footprint at different minibatch sizes, broken into weights,
// gradients, optimizer state, stashed activations and workspace — far beyond
// the 11 GB of one GPU and the 44 GB aggregate of the 4-GPU server.

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void FootprintTable(const std::string& name, model::Optimizer opt) {
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const PreparedModel pm = Prepare(name, machine);
  Table t({"minibatch", "weights", "grads", "optimizer", "activations",
           "workspace", "total (GiB)"});
  for (int d : {1, 2, 4, 8, 16, 32, 64}) {
    const auto f =
        model::ComputeFootprint(pm.model, d, opt, /*recompute=*/false);
    auto gib = [](Bytes b) {
      return Table::Cell(static_cast<double>(b) / GiB(1), 1);
    };
    t.AddRow({Table::Cell(d), gib(f.weights), gib(f.gradients),
              gib(f.optimizer_state), gib(f.activations), gib(f.workspace),
              gib(f.total())});
  }
  std::cout << name << " (GiB per component):\n";
  t.PrintAscii(&std::cout);
  std::cout << "\n";
}

void Run() {
  PrintHeader("Training memory footprint vs minibatch size",
              "Figure 8 (BERT96, GPT2) and Figure 18 (VGG416, ResNet1K)");
  std::cout << "Single GPU capacity: 11 GiB; 4-GPU aggregate: 44 GiB\n\n";
  FootprintTable("BERT96", model::Optimizer::kAdam);
  FootprintTable("GPT2", model::Optimizer::kAdam);
  FootprintTable("VGG416", model::Optimizer::kSgdMomentum);
  FootprintTable("ResNet1K", model::Optimizer::kSgdMomentum);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
