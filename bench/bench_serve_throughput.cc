// Serving-layer performance baseline: what does fronting Algorithm 1 with
// the content-addressed plan cache buy, and how does the service scale with
// concurrent closed-loop clients?
//
// Measures, in-process (no socket, so the numbers isolate the service):
//   * cold plan latency  — every request forced past the cache
//     (bypass_cache), i.e. a full configuration search;
//   * warm hit latency   — the identical request answered from the cache;
//   * closed-loop warm throughput at 1/4/8 client threads (req/s, p50/p99).
//
// `--json` writes BENCH_serve.json (CWD) in the `benchmark`/`seconds_per_op`
// record format scripts/check_bench.py understands. The cold/warm ratio and
// the bit-identity of the warm config are attached to the warm record — the
// paper's planner is deterministic, so a cache hit must return byte-for-byte
// the plan a fresh search would.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/plan_service.h"
#include "serve/wire.h"

namespace {

using Clock = std::chrono::steady_clock;
using harmony::bench::JsonObject;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct LoadResult {
  double seconds_per_op = 0;
  double requests_per_second = 0;
  double p50 = 0, p99 = 0;
};

/// Closed loop: `threads` callers, each keeping one request in flight,
/// `iters` warm requests per caller.
LoadResult RunClosedLoop(harmony::serve::PlanService* service,
                         const harmony::serve::PlanRequest& request,
                         int threads, int iters) {
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(threads) * iters);
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      for (int i = 0; i < iters; ++i) {
        const auto begin = Clock::now();
        const harmony::serve::PlanResponse r = service->Plan(request);
        const double s =
            std::chrono::duration<double>(Clock::now() - begin).count();
        HARMONY_CHECK(r.status.ok()) << r.status.ToString();
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(s);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult out;
  const double total = static_cast<double>(latencies.size());
  out.seconds_per_op = wall / total;
  out.requests_per_second = total / wall;
  out.p50 = Percentile(latencies, 0.50);
  out.p99 = Percentile(latencies, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harmony;
  const bool as_json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("Plan-as-a-service: cache & concurrency",
                     "serving layer (DESIGN.md §9)");

  serve::ServeOptions options;
  options.num_workers = 4;
  options.max_pending = 64;
  serve::PlanService service(options);

  serve::PlanRequest request;
  request.model = serve::ModelSpec::FromName("GPT2").value();
  request.machine = hw::MachineSpec::Commodity4Gpu();
  request.mode = core::HarmonyMode::kPipelineParallel;
  request.minibatch = 64;

  // Prime the profile memo and the cache: the first request pays profiling,
  // which is amortized state, not per-request work.
  const serve::PlanResponse primed = service.Plan(request);
  HARMONY_CHECK(primed.status.ok()) << primed.status.ToString();
  const std::string cold_config = serve::ConfigurationToJson(primed.config).Dump();

  // Cold: force past the cache so every call is a full search.
  serve::PlanRequest cold = request;
  cold.bypass_cache = true;
  constexpr int kColdReps = 7;
  std::vector<double> cold_samples;
  for (int i = 0; i < kColdReps; ++i) {
    const auto begin = Clock::now();
    const serve::PlanResponse r = service.Plan(cold);
    cold_samples.push_back(
        std::chrono::duration<double>(Clock::now() - begin).count());
    HARMONY_CHECK(r.status.ok()) << r.status.ToString();
  }
  const double cold_s = bench::Median(cold_samples);

  // Warm: identical request, answered from the cache. Time batches — a
  // single hit is sub-microsecond-noisy.
  constexpr int kWarmReps = 5, kWarmBatch = 2000;
  std::vector<double> warm_samples;
  std::string warm_config;
  bool all_hits = true;
  for (int i = 0; i < kWarmReps; ++i) {
    const auto begin = Clock::now();
    for (int j = 0; j < kWarmBatch; ++j) {
      const serve::PlanResponse r = service.Plan(request);
      all_hits = all_hits && r.cache_hit && r.status.ok();
      if (warm_config.empty()) {
        warm_config = serve::ConfigurationToJson(r.config).Dump();
      }
    }
    warm_samples.push_back(
        std::chrono::duration<double>(Clock::now() - begin).count() /
        kWarmBatch);
  }
  const double warm_s = bench::Median(warm_samples);
  HARMONY_CHECK(all_hits) << "warm requests missed the cache";
  const bool bit_identical = warm_config == cold_config;
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0;

  std::cout << "cold plan (full search): " << cold_s * 1e3 << " ms\n"
            << "warm plan (cache hit):   " << warm_s * 1e6 << " us  ("
            << speedup << "x faster, config bit-identical: "
            << (bit_identical ? "yes" : "NO") << ")\n\n";

  std::vector<JsonObject> records;
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_cold_plan_gpt2_pp64")
                        .Set("seconds_per_op", cold_s));
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_warm_hit_gpt2_pp64")
                        .Set("seconds_per_op", warm_s)
                        .Set("cold_over_warm", speedup)
                        .Set("config_bit_identical", bit_identical ? 1 : 0));

  for (const int threads : {1, 4, 8}) {
    const int iters = 4000 / threads;
    const LoadResult r = RunClosedLoop(&service, request, threads, iters);
    std::cout << threads << " client thread(s): " << r.requests_per_second
              << " req/s  (p50 " << r.p50 * 1e6 << " us, p99 " << r.p99 * 1e6
              << " us)\n";
    records.push_back(
        JsonObject()
            .Set("benchmark",
                 "serve_warm_throughput_" + std::to_string(threads) + "t")
            .Set("seconds_per_op", r.seconds_per_op)
            .Set("requests_per_second", r.requests_per_second)
            .Set("p50_seconds", r.p50)
            .Set("p99_seconds", r.p99));
  }

  const serve::ServiceStats stats = service.stats();
  const serve::CacheStats cache = service.cache_stats();
  std::cout << "\nservice: " << stats.completed << " responses, "
            << stats.searches << " searches, " << stats.cache_hits
            << " direct cache hits; cache " << cache.entries << " entries / "
            << cache.bytes << " bytes\n";

  if (as_json && !bench::WriteJsonFile("BENCH_serve.json", records)) return 1;
  return bit_identical ? 0 : 1;
}
