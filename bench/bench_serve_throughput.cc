// Serving-layer performance baseline: what does fronting Algorithm 1 with
// the content-addressed plan cache buy, and how does the epoll frontend
// change what a connection can push through it?
//
// In-process sections (no socket, isolating the service):
//   * cold plan latency  — every request forced past the cache
//     (bypass_cache), i.e. a full configuration search;
//   * warm hit latency   — the identical request answered from the cache;
//   * closed-loop warm throughput at 1/4/8 client threads (req/s, p50/p99).
//
// Socket sections (a real PlanServer on a Unix socket — the reactor path):
//   * serve_socket_roundtrip_1c    — one connection, one blocking round trip
//     at a time: the pre-reactor per-request floor;
//   * serve_socket_pipelined_{1,2,4,8}c — the same warm request pipelined 64
//     deep per connection. The 1c row must beat the round-trip row by >= 2x
//     (recorded as pipelined_over_roundtrip) — that multiple is what the
//     reactor's batched syscalls and byte-memo fast path exist to buy;
//   * serve_open_loop_p99_gpt2_pp64 — fixed offered load with scheduled
//     arrivals; latency is measured against the *schedule* (coordinated-
//     omission-corrected), and `seconds_per_op` carries the p99 so the
//     baseline gate watches tail latency under load, not just throughput.
//
// Multi-process tier section (DESIGN.md §13, run first — fork before
// threads):
//   * serve_tier_roundtrip_3p / serve_tier_warm_p99_3p — three forked
//     daemon processes form a cache tier; the parent owner-routes warm
//     requests through cluster::TierClient, so every round trip pays real
//     IPC to the owner process. The section asserts the tier contract
//     (exactly one search across all three daemons) and the p99 row gates
//     the cross-process warm tail.
//
// `--json` writes BENCH_serve.json (CWD) in the `benchmark`/`seconds_per_op`
// record format scripts/check_bench.py understands. The cold/warm ratio and
// the bit-identity of the warm config are attached to the warm record — the
// paper's planner is deterministic, so a cache hit must return byte-for-byte
// the plan a fresh search would; the socket sections re-assert the same
// bit-identity through the wire and the frontend memo.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster.h"
#include "serve/client.h"
#include "serve/plan_service.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace {

using Clock = std::chrono::steady_clock;
using harmony::bench::JsonObject;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct LoadResult {
  double seconds_per_op = 0;
  double requests_per_second = 0;
  double p50 = 0, p99 = 0;
};

/// Closed loop: `threads` callers, each keeping one request in flight,
/// `iters` warm requests per caller.
LoadResult RunClosedLoop(harmony::serve::PlanService* service,
                         const harmony::serve::PlanRequest& request,
                         int threads, int iters) {
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(threads) * iters);
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      for (int i = 0; i < iters; ++i) {
        const auto begin = Clock::now();
        const harmony::serve::PlanResponse r = service->Plan(request);
        const double s =
            std::chrono::duration<double>(Clock::now() - begin).count();
        HARMONY_CHECK(r.status.ok()) << r.status.ToString();
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(s);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult out;
  const double total = static_cast<double>(latencies.size());
  out.seconds_per_op = wall / total;
  out.requests_per_second = total / wall;
  out.p50 = Percentile(latencies, 0.50);
  out.p99 = Percentile(latencies, 0.99);
  return out;
}

/// One connection, one blocking round trip at a time: every request pays the
/// full encode -> send -> server parse -> reply -> recv -> decode chain.
LoadResult RunSocketRoundTrip(const std::string& path,
                              const harmony::serve::PlanRequest& request,
                              int iters) {
  harmony::serve::ServeClient client;
  HARMONY_CHECK(client.ConnectUnix(path).ok());
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(iters));
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto begin = Clock::now();
    auto r = client.Plan(request);
    latencies.push_back(
        std::chrono::duration<double>(Clock::now() - begin).count());
    HARMONY_CHECK(r.ok() && r.value().status.ok());
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult out;
  out.seconds_per_op = wall / iters;
  out.requests_per_second = iters / wall;
  out.p50 = Percentile(latencies, 0.50);
  out.p99 = Percentile(latencies, 0.99);
  return out;
}

/// `conns` connections, each pipelining the same pre-encoded warm request
/// `window` deep (below the server's max_pipeline_frames so flow control
/// never stalls the sender). Responses are collected raw — decoding happens
/// off the clock, and the first response per connection is decoded afterwards
/// to assert the wire answer is still a cache hit, bit-identical to `want`.
LoadResult RunSocketPipelined(const std::string& path,
                              const std::string& envelope, int conns,
                              int per_conn, int window,
                              const std::string& want_config) {
  std::mutex mu;
  std::vector<std::string> first_replies;
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < conns; ++c) {
    pool.emplace_back([&]() {
      harmony::serve::ServeClient client;
      HARMONY_CHECK(client.ConnectUnix(path).ok());
      std::string first;
      for (int sent = 0, done = 0; done < per_conn;) {
        while (sent < per_conn && client.in_flight() < window) {
          HARMONY_CHECK(client.SendEncodedNowait(envelope).ok());
          ++sent;
        }
        auto raw = client.CollectRaw();
        HARMONY_CHECK(raw.ok()) << raw.status().ToString();
        if (first.empty()) first = std::move(raw).value();
        ++done;
      }
      std::lock_guard<std::mutex> lock(mu);
      first_replies.push_back(std::move(first));
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const std::string& raw : first_replies) {
    auto reply = harmony::json::Parse(raw);
    HARMONY_CHECK(reply.ok());
    const harmony::json::Value* response = reply.value().Find("response");
    HARMONY_CHECK(response != nullptr);
    auto decoded = harmony::serve::PlanResponseFromJson(*response);
    HARMONY_CHECK(decoded.ok() && decoded.value().status.ok());
    HARMONY_CHECK(decoded.value().cache_hit) << "pipelined reply missed";
    const std::string got =
        harmony::serve::ConfigurationToJson(decoded.value().config).Dump();
    HARMONY_CHECK(got == want_config)
        << "wire response diverged from the cold search";
  }
  const double total = static_cast<double>(conns) * per_conn;
  LoadResult out;
  out.seconds_per_op = wall / total;
  out.requests_per_second = total / wall;
  return out;
}

/// Open-loop arrival mode: each connection fires requests on a fixed
/// schedule (one every `interval_s`), and latency is measured from the
/// *scheduled* arrival, not the send — if the server falls behind, the
/// backlog shows up in the tail instead of silently slowing the offered
/// load (coordinated-omission correction). seconds_per_op carries the p99.
LoadResult RunOpenLoop(const std::string& path,
                       const harmony::serve::PlanRequest& request, int conns,
                       int per_conn, double interval_s) {
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(conns) * per_conn);
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < conns; ++c) {
    pool.emplace_back([&]() {
      harmony::serve::ServeClient client;
      HARMONY_CHECK(client.ConnectUnix(path).ok());
      std::vector<double> local;
      local.reserve(static_cast<size_t>(per_conn));
      const auto base = Clock::now();
      for (int i = 0; i < per_conn; ++i) {
        const auto scheduled =
            base + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(i * interval_s));
        std::this_thread::sleep_until(scheduled);
        auto r = client.Plan(request);
        HARMONY_CHECK(r.ok() && r.value().status.ok());
        local.push_back(
            std::chrono::duration<double>(Clock::now() - scheduled).count());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult out;
  out.requests_per_second = static_cast<double>(latencies.size()) / wall;
  out.p50 = Percentile(latencies, 0.50);
  out.p99 = Percentile(latencies, 0.99);
  out.seconds_per_op = out.p99;  // the gated value IS the tail latency
  return out;
}

/// Forks one tier-member daemon (DESIGN.md §13). The child boots a
/// ClusterNode-backed PlanService on its endpoint and serves until a client
/// --shutdown, then exits; it never returns from this function. MUST be
/// called before the parent creates any threads — fork(2) only replicates
/// the calling thread, so a post-thread fork would child a torn service.
pid_t ForkTierDaemon(const std::string& self,
                     const std::vector<std::string>& members) {
  const pid_t pid = ::fork();
  HARMONY_CHECK(pid >= 0) << "fork failed";
  if (pid > 0) return pid;

  harmony::cluster::ClusterOptions copts;
  copts.self = self;
  copts.members = members;
  harmony::cluster::ClusterNode node(copts);
  harmony::serve::ServeOptions sopts;
  sopts.num_workers = 1;
  sopts.fill = &node;
  harmony::serve::PlanService service(sopts);
  node.set_service(&service);
  harmony::serve::ServerOptions server_options;
  server_options.unix_path = self.substr(5);  // strip "unix:"
  server_options.extension = [&node](const std::string& type,
                                     const harmony::json::Value& envelope) {
    return node.HandleEnvelope(type, envelope);
  };
  server_options.stats_extension = [&node]() { return node.StatsJson(); };
  harmony::serve::PlanServer server(&service, server_options);
  HARMONY_CHECK(server.Listen().ok());
  server.Start();
  while (!server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.Stop();
  std::_Exit(0);
}

/// Closed-loop warm round trips through TierClient owner routing: every
/// request crosses a process boundary to the fingerprint's owner daemon.
LoadResult RunTierLoop(harmony::cluster::TierClient* tier,
                       const harmony::serve::PlanRequest& request,
                       int iters) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(iters));
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto begin = Clock::now();
    auto r = tier->Plan(request);
    latencies.push_back(
        std::chrono::duration<double>(Clock::now() - begin).count());
    HARMONY_CHECK(r.ok() && r.value().status.ok());
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult out;
  out.seconds_per_op = wall / iters;
  out.requests_per_second = iters / wall;
  out.p50 = Percentile(latencies, 0.50);
  out.p99 = Percentile(latencies, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harmony;
  const bool as_json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("Plan-as-a-service: cache & concurrency",
                     "serving layer (DESIGN.md §9)");

  // --- multi-process tier section (DESIGN.md §13) ------------------------
  // Forked FIRST: fork(2) and threads don't mix, and every section below
  // spawns workers. Three daemon processes form a cache tier; the parent
  // owner-routes warm requests through TierClient, so each round trip pays
  // real IPC to the fingerprint's owner process.
  std::vector<std::string> tier_members;
  for (int i = 0; i < 3; ++i) {
    tier_members.push_back("unix:/tmp/harmony_bench_tier_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(i) + ".sock");
  }
  std::vector<pid_t> tier_pids;
  for (const std::string& member : tier_members) {
    tier_pids.push_back(ForkTierDaemon(member, tier_members));
  }
  for (const std::string& member : tier_members) {
    const std::string path = member.substr(5);
    for (int spin = 0; ::access(path.c_str(), F_OK) != 0; ++spin) {
      HARMONY_CHECK(spin < 500) << "tier daemon never bound " << member;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  serve::PlanRequest tier_request;
  tier_request.model = serve::ModelSpec::FromName("GPT2").value();
  tier_request.machine = hw::MachineSpec::Commodity4Gpu();
  tier_request.mode = core::HarmonyMode::kPipelineParallel;
  tier_request.minibatch = 64;

  LoadResult tier;
  {
    cluster::TierClient tier_client(tier_members);
    // Warm: the one search the tier ever runs for this key, on its owner.
    auto primed_tier = tier_client.Plan(tier_request);
    HARMONY_CHECK(primed_tier.ok() && primed_tier.value().status.ok());

    constexpr int kTierIters = 3000;
    tier = RunTierLoop(&tier_client, tier_request, kTierIters);
    std::cout << "tier round-trip, 3 procs: " << tier.requests_per_second
              << " req/s  (p50 " << tier.p50 * 1e6 << " us, p99 "
              << tier.p99 * 1e6 << " us)\n\n";

    // The tier contract held: one search total, owner-side, everything else
    // answered from the owner's cache.
    int64_t tier_searches = 0;
    for (const std::string& member : tier_members) {
      auto stats = tier_client.StatsFrom(member);
      HARMONY_CHECK(stats.ok()) << stats.status();
      const json::Value* service_block = stats.value().Find("service");
      HARMONY_CHECK(service_block != nullptr);
      int64_t searches = 0;
      HARMONY_CHECK(
          json::ReadInt64(*service_block, "searches", &searches).ok());
      tier_searches += searches;
    }
    HARMONY_CHECK(tier_searches == 1)
        << "tier ran " << tier_searches << " searches, wanted 1";
    HARMONY_CHECK(tier_client.ShutdownAll() == 3);
  }
  for (const pid_t pid : tier_pids) {
    int wstatus = 0;
    HARMONY_CHECK(::waitpid(pid, &wstatus, 0) == pid);
    HARMONY_CHECK(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "tier daemon exited dirty";
  }

  serve::ServeOptions options;
  options.num_workers = 4;
  options.max_pending = 64;
  serve::PlanService service(options);

  serve::PlanRequest request;
  request.model = serve::ModelSpec::FromName("GPT2").value();
  request.machine = hw::MachineSpec::Commodity4Gpu();
  request.mode = core::HarmonyMode::kPipelineParallel;
  request.minibatch = 64;

  // Prime the profile memo and the cache: the first request pays profiling,
  // which is amortized state, not per-request work.
  const serve::PlanResponse primed = service.Plan(request);
  HARMONY_CHECK(primed.status.ok()) << primed.status.ToString();
  const std::string cold_config = serve::ConfigurationToJson(primed.config).Dump();

  // Cold: force past the cache so every call is a full search.
  serve::PlanRequest cold = request;
  cold.bypass_cache = true;
  constexpr int kColdReps = 7;
  std::vector<double> cold_samples;
  for (int i = 0; i < kColdReps; ++i) {
    const auto begin = Clock::now();
    const serve::PlanResponse r = service.Plan(cold);
    cold_samples.push_back(
        std::chrono::duration<double>(Clock::now() - begin).count());
    HARMONY_CHECK(r.status.ok()) << r.status.ToString();
  }
  const double cold_s = bench::Median(cold_samples);

  // Warm: identical request, answered from the cache. Time batches — a
  // single hit is sub-microsecond-noisy.
  constexpr int kWarmReps = 5, kWarmBatch = 2000;
  std::vector<double> warm_samples;
  std::string warm_config;
  bool all_hits = true;
  for (int i = 0; i < kWarmReps; ++i) {
    const auto begin = Clock::now();
    for (int j = 0; j < kWarmBatch; ++j) {
      const serve::PlanResponse r = service.Plan(request);
      all_hits = all_hits && r.cache_hit && r.status.ok();
      if (warm_config.empty()) {
        warm_config = serve::ConfigurationToJson(r.config).Dump();
      }
    }
    warm_samples.push_back(
        std::chrono::duration<double>(Clock::now() - begin).count() /
        kWarmBatch);
  }
  const double warm_s = bench::Median(warm_samples);
  HARMONY_CHECK(all_hits) << "warm requests missed the cache";
  const bool bit_identical = warm_config == cold_config;
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0;

  std::cout << "cold plan (full search): " << cold_s * 1e3 << " ms\n"
            << "warm plan (cache hit):   " << warm_s * 1e6 << " us  ("
            << speedup << "x faster, config bit-identical: "
            << (bit_identical ? "yes" : "NO") << ")\n\n";

  std::vector<JsonObject> records;
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_tier_roundtrip_3p")
                        .Set("seconds_per_op", tier.seconds_per_op)
                        .Set("requests_per_second", tier.requests_per_second)
                        .Set("p50_seconds", tier.p50)
                        .Set("p99_seconds", tier.p99));
  // The gated value IS the tier's warm tail latency across processes.
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_tier_warm_p99_3p")
                        .Set("seconds_per_op", tier.p99));
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_cold_plan_gpt2_pp64")
                        .Set("seconds_per_op", cold_s));
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_warm_hit_gpt2_pp64")
                        .Set("seconds_per_op", warm_s)
                        .Set("cold_over_warm", speedup)
                        .Set("config_bit_identical", bit_identical ? 1 : 0));

  for (const int threads : {1, 4, 8}) {
    const int iters = 4000 / threads;
    const LoadResult r = RunClosedLoop(&service, request, threads, iters);
    std::cout << threads << " client thread(s): " << r.requests_per_second
              << " req/s  (p50 " << r.p50 * 1e6 << " us, p99 " << r.p99 * 1e6
              << " us)\n";
    records.push_back(
        JsonObject()
            .Set("benchmark",
                 "serve_warm_throughput_" + std::to_string(threads) + "t")
            .Set("seconds_per_op", r.seconds_per_op)
            .Set("requests_per_second", r.requests_per_second)
            .Set("p50_seconds", r.p50)
            .Set("p99_seconds", r.p99));
  }

  // --- socket sections: the epoll reactor front-end ----------------------
  const std::string sock_path =
      "/tmp/harmony_bench_serve_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions server_options;
  server_options.unix_path = sock_path;
  serve::PlanServer server(&service, server_options);
  HARMONY_CHECK(server.Listen().ok());
  server.Start();

  constexpr int kRoundTripIters = 3000;
  const LoadResult rt = RunSocketRoundTrip(sock_path, request, kRoundTripIters);
  std::cout << "\nsocket round-trip, 1 conn:  " << rt.requests_per_second
            << " req/s  (p50 " << rt.p50 * 1e6 << " us, p99 " << rt.p99 * 1e6
            << " us)\n";
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_socket_roundtrip_1c")
                        .Set("seconds_per_op", rt.seconds_per_op)
                        .Set("requests_per_second", rt.requests_per_second)
                        .Set("p50_seconds", rt.p50)
                        .Set("p99_seconds", rt.p99));

  const std::string envelope = serve::ServeClient::EncodePlanEnvelope(request);
  constexpr int kPipelineWindow = 64;  // < ServerOptions::max_pipeline_frames
  double pipelined_1c_rps = 0;
  for (const int conns : {1, 2, 4, 8}) {
    const int per_conn = 20000 / conns;
    const LoadResult r = RunSocketPipelined(sock_path, envelope, conns,
                                            per_conn, kPipelineWindow,
                                            cold_config);
    if (conns == 1) pipelined_1c_rps = r.requests_per_second;
    std::cout << "socket pipelined, " << conns
              << " conn(s): " << r.requests_per_second << " req/s\n";
    JsonObject rec;
    rec.Set("benchmark",
            "serve_socket_pipelined_" + std::to_string(conns) + "c")
        .Set("seconds_per_op", r.seconds_per_op)
        .Set("requests_per_second", r.requests_per_second);
    if (conns == 1) {
      rec.Set("pipelined_over_roundtrip",
              r.requests_per_second / rt.requests_per_second);
    }
    records.push_back(rec);
  }
  const double pipeline_gain = pipelined_1c_rps / rt.requests_per_second;
  std::cout << "pipelining gain over round-trip (1 conn): " << pipeline_gain
            << "x\n";
  const bool pipeline_ok = pipeline_gain >= 2.0;
  if (!pipeline_ok) {
    std::cout << "FAIL: pipelined throughput under 2x the round-trip floor\n";
  }

  // Offered load: 4 connections x 1 request / 1.5 ms = ~2667 req/s, far
  // below warm capacity, so the p99 measures scheduling + reactor overhead
  // under steady load rather than saturation collapse.
  constexpr int kOpenLoopConns = 4, kOpenLoopPerConn = 1200;
  constexpr double kOpenLoopInterval = 1.5e-3;
  const LoadResult ol = RunOpenLoop(sock_path, request, kOpenLoopConns,
                                    kOpenLoopPerConn, kOpenLoopInterval);
  std::cout << "open loop @ "
            << static_cast<int>(kOpenLoopConns / kOpenLoopInterval)
            << " req/s offered: " << ol.requests_per_second
            << " req/s achieved  (p50 " << ol.p50 * 1e6 << " us, p99 "
            << ol.p99 * 1e6 << " us vs schedule)\n";
  records.push_back(JsonObject()
                        .Set("benchmark", "serve_open_loop_p99_gpt2_pp64")
                        .Set("seconds_per_op", ol.seconds_per_op)
                        .Set("requests_per_second", ol.requests_per_second)
                        .Set("p50_seconds", ol.p50)
                        .Set("p99_seconds", ol.p99));

  serve::ServeClient probe;
  HARMONY_CHECK(probe.ConnectUnix(sock_path).ok());
  auto daemon_stats = probe.Stats();
  if (daemon_stats.ok()) {
    const json::Value* fe = daemon_stats.value().Find("frontend");
    if (fe != nullptr) std::cout << "frontend: " << fe->Dump() << "\n";
  }
  probe.Close();
  server.Stop();

  const serve::ServiceStats stats = service.stats();
  const serve::CacheStats cache = service.cache_stats();
  std::cout << "\nservice: " << stats.completed << " responses, "
            << stats.searches << " searches, " << stats.cache_hits
            << " direct cache hits; cache " << cache.entries << " entries / "
            << cache.bytes << " bytes\n";

  if (as_json && !bench::WriteJsonFile("BENCH_serve.json", records)) return 1;
  return (bit_identical && pipeline_ok) ? 0 : 1;
}
