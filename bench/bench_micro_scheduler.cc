// Microbenchmarks (google-benchmark) for the Scheduler's hot paths: balanced
// time packing, task graph generation, runtime estimation, the full
// configuration search, and one simulated runtime execution. These back
// Table 1's claim that end-to-end scheduling stays in seconds even for
// 1000-layer CNNs.
//
// `--json` skips google-benchmark and instead times each path manually,
// writing machine-readable per-op baselines to BENCH_runtime.json (compare
// against the checked-in baseline to catch scheduler/runtime regressions).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "core/packing.h"
#include "core/search.h"
#include "runtime/runtime.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace harmony::bench {
namespace {

const PreparedModel& Gpt2Model() {
  static const PreparedModel* pm =
      new PreparedModel(Prepare("GPT2", hw::MachineSpec::Commodity4Gpu()));
  return *pm;
}

const PreparedModel& ResnetModel() {
  static const PreparedModel* pm =
      new PreparedModel(Prepare("ResNet1K", hw::MachineSpec::Commodity4Gpu()));
  return *pm;
}

core::PackingOptions Packing() {
  core::PackingOptions opts;
  opts.capacity = static_cast<Bytes>(
      hw::MachineSpec::Commodity4Gpu().gpu.usable_memory() * 0.85);
  return opts;
}

void BM_BalancedTimePacking_Gpt2(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  for (auto _ : state) {
    auto packs = core::BackwardPacks(static_cast<int>(state.range(0)),
                                     pm.profiles, Packing());
    benchmark::DoNotOptimize(packs);
  }
}
BENCHMARK(BM_BalancedTimePacking_Gpt2)->Arg(1)->Arg(4);

void BM_BalancedTimePacking_ResNet1K(benchmark::State& state) {
  const auto& pm = ResnetModel();
  for (auto _ : state) {
    auto packs = core::BackwardPacks(16, pm.profiles, Packing());
    benchmark::DoNotOptimize(packs);
  }
}
BENCHMARK(BM_BalancedTimePacking_ResNet1K);

void BM_TaskGraphGeneration(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  core::Configuration config;
  config.u_fwd = config.u_bwd = 4;
  config.bwd_packs = core::BackwardPacks(4, pm.profiles, Packing()).value();
  config.fwd_packs =
      core::ForwardPacks(4, config.bwd_packs, pm.profiles, Packing()).value();
  for (auto _ : state) {
    auto g = core::GenerateHarmonyTaskGraph(
        config, core::HarmonyMode::kPipelineParallel, 4, 64,
        core::OptimizationFlags{}, pm.profiles);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_TaskGraphGeneration);

void BM_RuntimeEstimation(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  core::Configuration config;
  config.u_fwd = config.u_bwd = 4;
  config.bwd_packs = core::BackwardPacks(4, pm.profiles, Packing()).value();
  config.fwd_packs =
      core::ForwardPacks(4, config.bwd_packs, pm.profiles, Packing()).value();
  const auto g = core::GenerateHarmonyTaskGraph(
      config, core::HarmonyMode::kPipelineParallel, 4, 64,
      core::OptimizationFlags{}, pm.profiles);
  const core::RuntimeEstimator est(pm.profiles, machine);
  for (auto _ : state) {
    auto e = est.EstimateIteration(g);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_RuntimeEstimation);

void BM_FullConfigurationSearch_Gpt2(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  core::SearchOptions opts;
  opts.u_fwd_max = static_cast<int>(state.range(0));
  opts.u_bwd_max = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = core::SearchConfiguration(pm.profiles, machine,
                                       core::HarmonyMode::kPipelineParallel, 64,
                                       core::OptimizationFlags{}, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullConfigurationSearch_Gpt2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

core::TaskGraph Gpt2Graph(int minibatch) {
  const auto& pm = Gpt2Model();
  core::Configuration config;
  config.u_fwd = config.u_bwd = 4;
  config.bwd_packs = core::BackwardPacks(4, pm.profiles, Packing()).value();
  config.fwd_packs =
      core::ForwardPacks(4, config.bwd_packs, pm.profiles, Packing()).value();
  return core::GenerateHarmonyTaskGraph(
      config, core::HarmonyMode::kPipelineParallel, 4, minibatch,
      core::OptimizationFlags{}, pm.profiles);
}

void BM_RuntimeExecution_Gpt2(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const auto g = Gpt2Graph(static_cast<int>(state.range(0)));
  const runtime::Runtime rt(machine, pm.model);
  for (auto _ : state) {
    auto m = rt.Execute(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_RuntimeExecution_Gpt2)->Arg(16)->Unit(benchmark::kMillisecond);

/// Flow-heavy contention workload: the commodity 8-GPU PCIe tree carrying a
/// steady population of ~40 concurrent flows — per-GPU swap-in + swap-out
/// streams behind 4:1-oversubscribed switch uplinks plus same-switch and
/// cross-switch p2p pairs — where every completion immediately launches a
/// replacement flow. Each of the ~2.4k starts/completions triggers a full
/// max-min recompute over the whole population, which is exactly
/// FlowNetwork's hot path during a swap-saturated Harmony iteration.
void FlowContentionOnce() {
  sim::Engine e;
  const hw::MachineSpec m = hw::MachineSpec::Commodity8Gpu();
  const sim::Interconnect net(m);
  sim::FlowNetwork flows(&e, net.capacities());

  constexpr int kTotalFlows = 2400;
  int launched = 0;
  int drained = 0;
  // Deterministic byte sizes staggered so completions interleave instead of
  // draining in lock-step waves.
  const auto bytes_for = [](int i) { return MiB(24 + 8 * (i % 7)); };

  std::function<void(int)> launch = [&](int slot) {
    if (launched >= kTotalFlows) return;
    const int i = launched++;
    std::vector<int> path;
    switch (slot % 5) {
      case 0: path = net.SwapInPath(i % m.num_gpus); break;
      case 1: path = net.SwapOutPath((i + 3) % m.num_gpus); break;
      case 2: path = net.SwapInPath((i + 5) % m.num_gpus); break;
      case 3:  // same-switch p2p
        path = net.P2pPath(i % 4, (i + 1) % 4);
        break;
      default:  // cross-switch p2p
        path = net.P2pPath(i % 4, 4 + (i + 1) % 4);
        break;
    }
    flows.StartFlow(path, bytes_for(i), [&, slot] {
      ++drained;
      launch(slot);
    });
  };
  constexpr int kConcurrent = 40;
  for (int s = 0; s < kConcurrent; ++s) launch(s);
  e.Run();
  HARMONY_CHECK_EQ(drained, kTotalFlows);
  benchmark::DoNotOptimize(drained);
}

void BM_FlowContention_8Gpu(benchmark::State& state) {
  for (auto _ : state) FlowContentionOnce();
}
BENCHMARK(BM_FlowContention_8Gpu)->Unit(benchmark::kMillisecond);

// --- machine-readable baseline mode (`--json`) -----------------------------

int RunJsonMode() {
  const auto& pm = Gpt2Model();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  constexpr int kReps = 5;
  std::vector<JsonObject> records;
  auto record = [&records](const char* name, int iters,
                           const std::function<void()>& fn) {
    const double sec = MedianSecondsPerOp(kReps, iters, fn);
    JsonObject o;
    o.Set("benchmark", name)
        .Set("iterations", iters)
        .Set("reps", kReps)
        .Set("seconds_per_op", sec);
    records.push_back(o);
    std::cout << name << ": " << FormatTime(sec) << "/op (median of " << kReps
              << " reps x " << iters << " iters)\n";
  };

  record("balanced_time_packing_gpt2_u4", 20, [&]() {
    auto packs = core::BackwardPacks(4, pm.profiles, Packing());
    benchmark::DoNotOptimize(packs);
  });
  record("task_graph_generation_gpt2_mb64", 20, [&]() {
    auto g = Gpt2Graph(64);
    benchmark::DoNotOptimize(g);
  });
  {
    const auto g = Gpt2Graph(64);
    const core::RuntimeEstimator est(pm.profiles, machine);
    record("runtime_estimation_gpt2_mb64", 20, [&]() {
      auto e = est.EstimateIteration(g);
      benchmark::DoNotOptimize(e);
    });
  }
  {
    core::SearchOptions opts;
    opts.u_fwd_max = opts.u_bwd_max = 8;
    record("full_configuration_search_gpt2_u8", 3, [&]() {
      auto r = core::SearchConfiguration(pm.profiles, machine,
                                         core::HarmonyMode::kPipelineParallel,
                                         64, core::OptimizationFlags{}, opts);
      benchmark::DoNotOptimize(r);
    });
  }
  {
    const auto g = Gpt2Graph(16);
    const runtime::Runtime rt(machine, pm.model);
    record("runtime_execution_gpt2_mb16", 5, [&]() {
      auto m = rt.Execute(g);
      benchmark::DoNotOptimize(m);
    });
  }
  record("flow_contention_8gpu_40flows", 3, FlowContentionOnce);

  return WriteJsonFile("BENCH_runtime.json", records) ? 0 : 1;
}

}  // namespace
}  // namespace harmony::bench

int main(int argc, char** argv) {
  if (harmony::bench::JsonFlag(argc, argv)) {
    // Manual timing mode: google-benchmark never sees the unknown flag.
    return harmony::bench::RunJsonMode();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
