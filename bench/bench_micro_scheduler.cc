// Microbenchmarks (google-benchmark) for the Scheduler's hot paths: balanced
// time packing, task graph generation, runtime estimation and the full
// configuration search. These back Table 1's claim that end-to-end
// scheduling stays in seconds even for 1000-layer CNNs.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/packing.h"
#include "core/search.h"

namespace harmony::bench {
namespace {

const PreparedModel& Gpt2Model() {
  static const PreparedModel* pm =
      new PreparedModel(Prepare("GPT2", hw::MachineSpec::Commodity4Gpu()));
  return *pm;
}

const PreparedModel& ResnetModel() {
  static const PreparedModel* pm =
      new PreparedModel(Prepare("ResNet1K", hw::MachineSpec::Commodity4Gpu()));
  return *pm;
}

core::PackingOptions Packing() {
  core::PackingOptions opts;
  opts.capacity = static_cast<Bytes>(
      hw::MachineSpec::Commodity4Gpu().gpu.usable_memory() * 0.85);
  return opts;
}

void BM_BalancedTimePacking_Gpt2(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  for (auto _ : state) {
    auto packs = core::BackwardPacks(static_cast<int>(state.range(0)),
                                     pm.profiles, Packing());
    benchmark::DoNotOptimize(packs);
  }
}
BENCHMARK(BM_BalancedTimePacking_Gpt2)->Arg(1)->Arg(4);

void BM_BalancedTimePacking_ResNet1K(benchmark::State& state) {
  const auto& pm = ResnetModel();
  for (auto _ : state) {
    auto packs = core::BackwardPacks(16, pm.profiles, Packing());
    benchmark::DoNotOptimize(packs);
  }
}
BENCHMARK(BM_BalancedTimePacking_ResNet1K);

void BM_TaskGraphGeneration(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  core::Configuration config;
  config.u_fwd = config.u_bwd = 4;
  config.bwd_packs = core::BackwardPacks(4, pm.profiles, Packing()).value();
  config.fwd_packs =
      core::ForwardPacks(4, config.bwd_packs, pm.profiles, Packing()).value();
  for (auto _ : state) {
    auto g = core::GenerateHarmonyTaskGraph(
        config, core::HarmonyMode::kPipelineParallel, 4, 64,
        core::OptimizationFlags{}, pm.profiles);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_TaskGraphGeneration);

void BM_RuntimeEstimation(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  core::Configuration config;
  config.u_fwd = config.u_bwd = 4;
  config.bwd_packs = core::BackwardPacks(4, pm.profiles, Packing()).value();
  config.fwd_packs =
      core::ForwardPacks(4, config.bwd_packs, pm.profiles, Packing()).value();
  const auto g = core::GenerateHarmonyTaskGraph(
      config, core::HarmonyMode::kPipelineParallel, 4, 64,
      core::OptimizationFlags{}, pm.profiles);
  const core::RuntimeEstimator est(pm.profiles, machine);
  for (auto _ : state) {
    auto e = est.EstimateIteration(g);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_RuntimeEstimation);

void BM_FullConfigurationSearch_Gpt2(benchmark::State& state) {
  const auto& pm = Gpt2Model();
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  core::SearchOptions opts;
  opts.u_fwd_max = static_cast<int>(state.range(0));
  opts.u_bwd_max = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = core::SearchConfiguration(pm.profiles, machine,
                                       core::HarmonyMode::kPipelineParallel, 64,
                                       core::OptimizationFlags{}, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullConfigurationSearch_Gpt2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harmony::bench

BENCHMARK_MAIN();
