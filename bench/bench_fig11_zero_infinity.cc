// Reproduces Figure 11: Harmony vs ZeRO-Infinity for GPT2 (1.5B) on 4 GPUs.
// ZeRO-Infinity shares Harmony's configuration but lacks input-batch
// grouping, so its per-microbatch weight streaming swaps an order of
// magnitude more as the minibatch grows.

#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

namespace harmony::bench {
namespace {

void Run() {
  PrintHeader("Harmony vs ZeRO-Infinity, GPT2 (1.5B), 4 GPUs", "Figure 11");
  const hw::MachineSpec machine = hw::MachineSpec::Commodity4Gpu();
  const PreparedModel pm = Prepare("GPT2", machine);

  Table t({"minibatch", "scheme", "throughput (samples/s)",
           "global swap (GiB)", "max per-GPU swap (GiB)", "speedup vs ZeRO"});
  for (int d : {16, 32, 64, 128}) {
    // Harmony DP first: its config is shared with ZeRO (Sec 5.3).
    const SchemeResult dp = RunScheme(Scheme::kHarmonyDp, pm, machine, d);
    const SchemeResult pp = RunScheme(Scheme::kHarmonyPp, pm, machine, d);
    RunSchemeOptions zopts;
    if (dp.ok) zopts.fixed_config = dp.config;
    const SchemeResult zero = RunScheme(Scheme::kZeroInfinity, pm, machine, d, zopts);
    for (const SchemeResult* r : {&zero, &dp, &pp}) {
      if (!r->ok) {
        t.AddRow({Table::Cell(d), r->scheme, r->error, "-", "-", "-"});
        continue;
      }
      const std::string speedup =
          zero.ok ? Table::Cell(zero.iteration_time / r->iteration_time) : "-";
      t.AddRow({Table::Cell(d), r->scheme, Table::Cell(r->throughput),
                Table::Cell(static_cast<double>(r->metrics.total_swap()) / GiB(1), 1),
                Table::Cell(static_cast<double>(r->metrics.max_device_swap()) / GiB(1), 1),
                speedup});
    }
  }
  t.PrintAscii(&std::cout);
}

}  // namespace
}  // namespace harmony::bench

int main() { harmony::bench::Run(); }
